// retina::obs — lock-cheap observability for the training and serving
// paths: counters, gauges, log2-bucketed latency histograms, append-only
// series, and RAII trace spans, all hanging off a process-wide registry
// that exports JSON and a human-readable table.
//
// Determinism contract: every primitive here is an *observer*. Nothing in
// this header may influence control flow, RNG consumption, or arithmetic
// of the code it instruments — instrumented code must produce bit-identical
// outputs with observability enabled, disabled at runtime, or compiled out
// (pinned by obs_test's on/off bit-exactness run; see DESIGN.md §9).
//
// Cost model:
//   - disabled (runtime): one relaxed atomic load + one predictable branch
//     per instrumentation site;
//   - compiled out (-DRETINA_OBS_DISABLED): sites reduce to nothing;
//   - enabled: counters are sharded relaxed fetch_adds (no cacheline
//     ping-pong under ParallelFor), histograms one fetch_add into a log2
//     bucket, spans two steady_clock reads + three fetch_adds.
//
// Registry lookups (GetCounter etc.) take a mutex and are NOT for hot
// paths: resolve once into a static/member pointer and reuse it — the
// returned pointers are stable for the life of the process.

#ifndef RETINA_COMMON_OBS_H_
#define RETINA_COMMON_OBS_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace retina::obs {

#ifdef RETINA_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

namespace internal {
extern std::atomic<bool> g_enabled;
/// Stable small id of the calling thread, used to pick a counter shard.
size_t ThreadShard();
}  // namespace internal

/// Runtime kill switch. Defaults to on unless the RETINA_OBS environment
/// variable is set to "0" at process start.
inline bool Enabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

/// \brief Monotonic event counter, sharded to stay cheap when many pool
/// workers increment the same counter concurrently.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[internal::ThreadShard() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Aggregated value (sum over shards). Concurrent Adds may or may not be
  /// included; reads are meant for end-of-run export.
  uint64_t Get() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// \brief Last-value (Set) / high-watermark (UpdateMax) instrument.
class Gauge {
 public:
  void Set(int64_t v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }

  /// Raises the gauge to `v` if larger (e.g. peak queue depth).
  void UpdateMax(int64_t v) {
    if (!Enabled()) return;
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  int64_t Get() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Log2-bucketed histogram of non-negative integer samples
/// (typically nanoseconds). Bucket 0 holds the value 0; bucket b >= 1
/// holds [2^(b-1), 2^b). Quantiles resolve to the upper bound of the
/// containing bucket, so a reported p99 is within 2x of the true value —
/// the right fidelity for latency regressions at zero allocation cost.
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  void Record(uint64_t value) {
    if (!Enabled()) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// Bucket index for a sample: 0 for 0, else 1 + floor(log2(value)).
  static size_t BucketIndex(uint64_t value);
  /// Smallest sample the bucket admits (inclusive).
  static uint64_t BucketLowerBound(size_t bucket);
  /// Largest sample the bucket admits (inclusive).
  static uint64_t BucketUpperBound(size_t bucket);
  /// Quantile over an external kBuckets-sized count array (merged windows);
  /// same semantics as Quantile(). Returns 0 when `count` is 0.
  static uint64_t QuantileFromBuckets(const uint64_t* buckets, uint64_t count,
                                      double q);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(size_t bucket) const {
    return buckets_[bucket].load(std::memory_order_relaxed);
  }

  /// Value below which a fraction >= q of samples fall (upper bound of the
  /// containing bucket). q in [0, 1]; returns 0 on an empty histogram.
  uint64_t Quantile(double q) const;

  double Mean() const {
    const uint64_t n = Count();
    return n == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(n);
  }

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// \brief Point-in-time view of one histogram: count, sum, and bucket-upper
/// -bound quantiles. Integer-only, so an empty histogram snapshots to all
/// zeros — never NaN.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// \brief Aggregate over the most recent slots of a WindowedHistogram's
/// ring. `ticks` is the logical clock (rotations since reset); `slots` is
/// how many sub-histograms were merged (the current partial slot counts).
struct WindowSnapshot {
  uint64_t ticks = 0;
  uint64_t slots = 0;
  HistogramSnapshot window;
};

/// \brief Histogram with a sliding window: samples land in a cumulative
/// histogram *and* the current slot of a ring of kRingSize sub-histograms.
/// Tick() — a logical clock driven by the caller (e.g. every N requests),
/// never wall time — rotates the ring, so SnapshotWindow() answers "what is
/// p99 over the last few ticks" while the cumulative view keeps the
/// since-boot totals. Record/Tick are no-ops when obs is disabled, which
/// preserves the obs-on ≡ obs-off determinism contract.
///
/// Concurrency: Record is wait-free; a Record racing a Tick may land in the
/// slot being recycled and be dropped from the window (never from the
/// cumulative view) — monitoring-grade fidelity, by design.
class WindowedHistogram {
 public:
  static constexpr size_t kRingSize = 8;

  /// `cumulative` must outlive this object; the registry wires it to the
  /// plain histogram registered under the same name.
  explicit WindowedHistogram(Histogram* cumulative) : cumulative_(cumulative) {}

  void Record(uint64_t value) {
    if (!Enabled()) return;
    cumulative_->Record(value);
    ring_[ticks_.load(std::memory_order_acquire) % kRingSize].Record(value);
  }

  /// Advances the logical clock and recycles the slot the window rotates
  /// into. No-op when obs is disabled (rotation only under Enabled()).
  void Tick();

  /// Merged view of the last `last_n` slots (clamped to what the ring holds
  /// and to how many ticks have happened). Includes the current partial
  /// slot, so telemetry is live even before the first rotation.
  WindowSnapshot SnapshotWindow(size_t last_n = kRingSize) const;

  const Histogram& Cumulative() const { return *cumulative_; }
  uint64_t Ticks() const { return ticks_.load(std::memory_order_relaxed); }

  /// Clears the ring and the logical clock. The shared cumulative histogram
  /// is owned by the registry and reset there.
  void Reset();

 private:
  Histogram* cumulative_;
  Histogram ring_[kRingSize];
  std::atomic<uint64_t> ticks_{0};  // current slot = ticks_ % kRingSize
};

/// \brief Append-only sequence of doubles (per-epoch loss / grad-norm /
/// step-time trajectories). Mutex-guarded — meant for once-per-epoch
/// appends, not per-sample traffic.
class Series {
 public:
  void Append(double v);
  std::vector<double> Values() const;
  size_t Size() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::vector<double> values_;
};

/// \brief Wall-time attribution slot for one named scope. `total_ns` is
/// inclusive of nested spans, `self_ns` excludes time attributed to child
/// spans opened on the same thread.
struct ScopeStats {
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> self_ns{0};
  std::atomic<uint64_t> count{0};

  void Reset() {
    total_ns.store(0, std::memory_order_relaxed);
    self_ns.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
  }
};

/// \brief RAII trace span: attributes the enclosed wall time to a scope
/// and, on the same thread, subtracts it from the parent span's self time.
/// Spans on different pool workers nest per thread (each worker keeps its
/// own span stack), so per-chunk spans under ParallelFor are safe.
///
/// When a `name` is supplied (RETINA_OBS_SPAN always does) and a timeline
/// trace session is active (common/trace.h), the span additionally emits
/// begin/end events under the thread's current trace context. `name` must
/// outlive the trace session — string literals qualify.
class Span {
 public:
  explicit Span(ScopeStats* scope, const char* name = nullptr);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  ScopeStats* scope_;  // nullptr when obs is disabled at construction
  std::chrono::steady_clock::time_point start_;
  uint64_t child_ns_ = 0;
  Span* parent_ = nullptr;
  // Timeline-trace state; zero/null unless tracing was on at construction.
  const char* trace_name_ = nullptr;
  uint64_t trace_span_id_ = 0;
  uint64_t trace_saved_trace_id_ = 0;
  uint64_t trace_saved_span_id_ = 0;
};

/// \brief Value snapshot of the registry's counters, gauges, histograms,
/// and windowed histograms — the payload of the serve-path kMetricsResponse
/// and the input to SnapshotDelta. Keys are instrument names (sorted by
/// std::map).
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, WindowSnapshot> windows;
};

/// \brief Process-wide registry of named instruments. Get* registers on
/// first use and returns a pointer that stays valid for the life of the
/// process; Reset() zeroes values but never invalidates pointers.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Series* GetSeries(const std::string& name);
  ScopeStats* GetScope(const std::string& name);

  /// Windowed histogram whose cumulative side IS the plain histogram
  /// registered under the same name — recording through the windowed handle
  /// feeds both views; exports and older callers see the cumulative
  /// histogram unchanged.
  WindowedHistogram* GetWindowedHistogram(const std::string& name);

  /// Ticks every registered windowed histogram — the per-process logical
  /// clock for window rotation. No-op when obs is disabled.
  void TickWindows();

  /// Point-in-time values of all counters, gauges, histograms, and windows.
  RegistrySnapshot TakeSnapshot() const;

  /// Delta view between two snapshots: counters are after-before (clamped
  /// at 0 if an instrument was reset in between), gauges are the signed
  /// difference, and histograms/windows pass through from `after` (deltas
  /// do not compose over quantiles). Keys are the union of both inputs.
  static RegistrySnapshot SnapshotDelta(const RegistrySnapshot& before,
                                        const RegistrySnapshot& after);

  /// Prometheus text exposition of counters, gauges, and histograms
  /// (cumulative `_bucket`/`_sum`/`_count` with `le` labels), plus windowed
  /// p50/p95/p99 gauges. Families are `retina_`-prefixed, typed, sorted by
  /// name, and unique.
  std::string ToPrometheus() const;

  /// Zeroes every registered instrument (pointers remain valid).
  void Reset();

  /// Samples process-level gauges into the registry — currently
  /// `process.peak_rss_bytes` from /proc/self/status VmHWM (0 on
  /// non-Linux). Meant to be called once at export time, right before
  /// ToJson / SummaryTable.
  void SampleProcessGauges();

  /// Full dump: {"counters": {...}, "gauges": {...}, "histograms": {...},
  /// "windows": {...}, "series": {...}, "scopes": {...}} with histogram
  /// quantiles and non-empty buckets inlined. Stable key order (sorted by
  /// name).
  std::string ToJson() const;

  /// Human-readable multi-table summary (counters/gauges, histograms with
  /// p50/p95/p99, scopes with total/self milliseconds). Empty sections are
  /// omitted; returns "" when nothing has been recorded.
  std::string SummaryTable() const;

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

}  // namespace retina::obs

// Attributes the enclosing block's wall time to the named scope. The
// registry lookup happens once (function-local static); the per-entry cost
// is the Span constructor.
#define RETINA_OBS_CONCAT_INNER(a, b) a##b
#define RETINA_OBS_CONCAT(a, b) RETINA_OBS_CONCAT_INNER(a, b)

#ifdef RETINA_OBS_DISABLED
#define RETINA_OBS_SPAN(name)
#else
#define RETINA_OBS_SPAN(name)                                            \
  static ::retina::obs::ScopeStats* RETINA_OBS_CONCAT(retina_obs_scope_, \
                                                      __LINE__) =        \
      ::retina::obs::Registry::Global().GetScope(name);                  \
  ::retina::obs::Span RETINA_OBS_CONCAT(retina_obs_span_, __LINE__)(     \
      RETINA_OBS_CONCAT(retina_obs_scope_, __LINE__), name)
#endif

#endif  // RETINA_COMMON_OBS_H_
