// Least-recently-used cache over an unordered_map + recency list.
//
// Serving-side caches (ScoringEngine's per-user feature invariants and
// per-tweet contexts) are bounded by capacity — and optionally by a byte
// budget with a per-entry cost supplied at Put — and evict the entry that
// has gone unread the longest. Not thread-safe: callers own their engine
// instance; parallel scoring happens below the cache (inside the batched
// model forward), never across it.

#ifndef RETINA_COMMON_LRU_CACHE_H_
#define RETINA_COMMON_LRU_CACHE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace retina {

/// \brief Fixed-capacity LRU map. Get refreshes recency; Put evicts
/// least-recently-used entries while the cache exceeds its entry capacity
/// or (when set) its byte budget.
template <typename K, typename V>
class LruCache {
 public:
  /// `byte_budget` of 0 disables byte accounting (count-only eviction).
  /// With a budget, pass each entry's cost to Put; eviction drops LRU
  /// entries until the budget holds again, but always keeps the entry
  /// just inserted (a single over-budget entry still caches).
  explicit LruCache(size_t capacity, size_t byte_budget = 0)
      : capacity_(capacity), byte_budget_(byte_budget) {
    assert(capacity > 0);
  }

  /// Returns the cached value (marking it most recently used) or nullptr.
  /// The pointer stays valid until the next Put/Clear.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second.value;
  }

  /// Inserts (or overwrites) key as the most recently used entry and
  /// returns a pointer to the stored value, evicting from the LRU end
  /// while over capacity or over the byte budget. `cost` is the entry's
  /// accounted size in bytes; it only matters when a byte budget is set.
  V* Put(K key, V value, size_t cost = 0) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      bytes_ -= it->second->second.cost;
      bytes_ += cost;
      it->second->second = Entry{std::move(value), cost};
      items_.splice(items_.begin(), items_, it->second);
      EvictOverBudget();
      return &it->second->second.value;
    }
    items_.emplace_front(key, Entry{std::move(value), cost});
    index_.emplace(std::move(key), items_.begin());
    bytes_ += cost;
    if (items_.size() > capacity_) EvictBack();
    EvictOverBudget();
    return &items_.front().second.value;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  void Clear() {
    items_.clear();
    index_.clear();
    bytes_ = 0;
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  /// Sum of the costs of the resident entries.
  size_t bytes() const { return bytes_; }
  size_t byte_budget() const { return byte_budget_; }
  /// Total entries evicted over the cache's lifetime.
  uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    V value;
    size_t cost;
  };

  void EvictBack() {
    bytes_ -= items_.back().second.cost;
    index_.erase(items_.back().first);
    items_.pop_back();
    ++evictions_;
  }

  void EvictOverBudget() {
    if (byte_budget_ == 0) return;
    // Never evict the most-recent entry: the caller holds a pointer into
    // it, and an empty cache would thrash on every lookup anyway.
    while (bytes_ > byte_budget_ && items_.size() > 1) EvictBack();
  }

  size_t capacity_;
  size_t byte_budget_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  std::list<std::pair<K, Entry>> items_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, Entry>>::iterator>
      index_;
};

}  // namespace retina

#endif  // RETINA_COMMON_LRU_CACHE_H_
