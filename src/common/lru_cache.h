// Least-recently-used cache over an unordered_map + recency list.
//
// Serving-side caches (ScoringEngine's per-user feature invariants and
// per-tweet contexts) are bounded by capacity and evict the entry that has
// gone unread the longest. Not thread-safe: callers own their engine
// instance; parallel scoring happens below the cache (inside the batched
// model forward), never across it.

#ifndef RETINA_COMMON_LRU_CACHE_H_
#define RETINA_COMMON_LRU_CACHE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

namespace retina {

/// \brief Fixed-capacity LRU map. Get refreshes recency; Put evicts the
/// least-recently-used entry once size exceeds capacity.
template <typename K, typename V>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    assert(capacity > 0);
  }

  /// Returns the cached value (marking it most recently used) or nullptr.
  /// The pointer stays valid until the next Put/Clear.
  V* Get(const K& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    items_.splice(items_.begin(), items_, it->second);
    return &it->second->second;
  }

  /// Inserts (or overwrites) key as the most recently used entry and
  /// returns a pointer to the stored value. Evicts the LRU entry when the
  /// cache is over capacity.
  V* Put(K key, V value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      items_.splice(items_.begin(), items_, it->second);
      return &it->second->second;
    }
    items_.emplace_front(key, std::move(value));
    index_.emplace(std::move(key), items_.begin());
    if (items_.size() > capacity_) {
      index_.erase(items_.back().first);
      items_.pop_back();
      ++evictions_;
    }
    return &items_.front().second;
  }

  bool Contains(const K& key) const { return index_.count(key) > 0; }

  void Clear() {
    items_.clear();
    index_.clear();
  }

  size_t size() const { return items_.size(); }
  size_t capacity() const { return capacity_; }
  /// Total entries evicted over the cache's lifetime.
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  uint64_t evictions_ = 0;
  std::list<std::pair<K, V>> items_;  // front = most recently used
  std::unordered_map<K, typename std::list<std::pair<K, V>>::iterator>
      index_;
};

}  // namespace retina

#endif  // RETINA_COMMON_LRU_CACHE_H_
