#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace retina {

namespace {

// SplitMix64 — used for seeding and for deriving child streams.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  s_[0] = SplitMix64(&sm);
  s_[1] = SplitMix64(&sm);
  s_[2] = SplitMix64(&sm);
  s_[3] = SplitMix64(&sm);
}

Rng::Rng(uint64_t s0, uint64_t s1, uint64_t s2, uint64_t s3) : seed_(s0) {
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

Rng Rng::Split() {
  // Child stream is a function of the original seed and the split ordinal
  // only, independent of how many variates the parent has drawn.
  ++split_counter_;
  return Stream(seed_, split_counter_ - 1);
}

Rng Rng::Stream(uint64_t seed, uint64_t stream_id) {
  uint64_t sm = seed ^ (0xA0761D6478BD642FULL + stream_id + 1);
  uint64_t c0 = SplitMix64(&sm);
  uint64_t c1 = SplitMix64(&sm);
  uint64_t c2 = SplitMix64(&sm);
  uint64_t c3 = SplitMix64(&sm);
  return Rng(c0, c1, c2, c3);
}

uint64_t Rng::NextU64() {
  // xoshiro256**
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1, u2;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0);
  double u;
  do {
    u = Uniform();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

double Rng::Gamma(double shape) {
  assert(shape > 0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia–Tsang).
    const double g = Gamma(shape + 1.0);
    double u;
    do {
      u = Uniform();
    } while (u <= 1e-300);
    return g * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = Normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = Uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

int Rng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double product = Uniform();
    int count = 0;
    while (product > limit) {
      ++count;
      product *= Uniform();
    }
    return count;
  }
  // Normal approximation with continuity correction for large means.
  const double x = Normal(mean, std::sqrt(mean));
  return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size() - 1;
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::Dirichlet(size_t k, double alpha) {
  return Dirichlet(std::vector<double>(k, alpha));
}

std::vector<double> Rng::Dirichlet(const std::vector<double>& alpha) {
  std::vector<double> out(alpha.size());
  double total = 0.0;
  for (size_t i = 0; i < alpha.size(); ++i) {
    out[i] = Gamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    // Degenerate draw; fall back to uniform simplex point.
    const double v = 1.0 / static_cast<double>(alpha.size());
    for (double& x : out) x = v;
    return out;
  }
  for (double& x : out) x /= total;
  return out;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  if (k >= n) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  // Reservoir sampling keeps memory at O(k) even for large n.
  std::vector<size_t> reservoir(k);
  for (size_t i = 0; i < k; ++i) reservoir[i] = i;
  for (size_t i = k; i < n; ++i) {
    const size_t j = static_cast<size_t>(UniformInt(i + 1));
    if (j < k) reservoir[j] = i;
  }
  return reservoir;
}

}  // namespace retina
