// retina::obs timeline tracer — answers *which* request was slow and what
// it did, where the aggregate instruments in common/obs.h only answer "how
// slow on average". Each thread owns a bounded buffer of timestamped
// begin/end/instant events; a thread-local trace context (trace id +
// current span id) is captured by retina::par at job submission and
// restored inside pool workers, so per-chunk events nest under the
// submitting span even though they run on a different thread. The whole
// session exports as Chrome trace_event JSON loadable in chrome://tracing
// or Perfetto (and consumed by tools/report.py).
//
// Determinism contract: identical to the rest of retina::obs — the tracer
// is an observer. Starting, stopping, or compiling out tracing must never
// change control flow, RNG consumption, or arithmetic of instrumented
// code; obs_test pins bit-exactness of training and world generation with
// tracing on and off.
//
// Cost model:
//   - not started (the default): one relaxed atomic load + one predictable
//     branch per site — no TLS writes, no clock reads;
//   - compiled out (-DRETINA_OBS_DISABLED): sites reduce to nothing;
//   - started: one steady_clock read + one bounds-checked store into the
//     calling thread's private buffer per event. Buffers never grow and
//     never block: when one fills, further events on that thread are
//     dropped and counted (reported in the export's `otherData`).
//
// Threading: event emission is wait-free and touches only thread-local
// state. StartTracing / StopTracing / TraceToChromeJson must be called
// from quiescent points (no parallel work in flight) — the CLI starts
// tracing before the command runs and exports after it returns.

#ifndef RETINA_COMMON_TRACE_H_
#define RETINA_COMMON_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/obs.h"

namespace retina::obs {

/// Ambient trace identity of the current thread. `trace_id` groups every
/// event of one logical request/batch/run; `span_id` is the innermost open
/// span (the parent of any event emitted next). Zero means "none".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

namespace internal {
extern std::atomic<bool> g_trace_enabled;

/// Emits a begin event parented under the current context, makes the new
/// span the current one, and returns its id. The previous context is
/// written to *saved_trace_id / *saved_span_id for the matching end call.
uint64_t TraceBeginSpan(const char* name, uint64_t* saved_trace_id,
                        uint64_t* saved_span_id);
/// Emits the end event for `span_id` and restores the saved context.
void TraceEndSpan(const char* name, uint64_t span_id, uint64_t saved_trace_id,
                  uint64_t saved_span_id);
}  // namespace internal

/// True between StartTracing and StopTracing (always false when obs is
/// compiled out). This is the one relaxed load every disabled site pays.
inline bool TraceEnabled() {
  if constexpr (!kCompiledIn) return false;
  return internal::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Per-thread event-buffer capacity when StartTracing is called without an
/// explicit one and RETINA_TRACE_BUFFER is not set.
inline constexpr size_t kDefaultTraceBufferCapacity = 65536;

/// Begins a trace session: resets every thread's buffer (and drop
/// counters), re-arms span/trace id minting from 1, stamps the session
/// epoch, and enables emission. `buffer_capacity` is events per thread;
/// 0 means the RETINA_TRACE_BUFFER environment override or the default.
/// Must be called while no instrumented parallel work is in flight.
void StartTracing(size_t buffer_capacity = 0);

/// Stops emission. Buffered events stay readable until the next Start.
void StopTracing();

/// Total events dropped on full buffers since the last StartTracing.
uint64_t TraceDroppedEvents();

/// Total events currently buffered across all threads.
size_t TraceBufferedEvents();

/// Serializes the session as Chrome trace_event JSON: an object with a
/// `traceEvents` array (complete "X" events with microsecond ts/dur,
/// instant "i" events, thread-name metadata; every event carries
/// trace_id/span_id/parent_span_id in `args`) plus `otherData` holding
/// dropped_events / buffer_capacity. Begin events whose end was dropped or
/// is still open export as "B" events. Call from a quiescent point.
std::string TraceToChromeJson();

/// The calling thread's ambient context (zeros when tracing is off or
/// compiled out).
TraceContext CurrentTraceContext();

/// Overwrites the calling thread's ambient context. Used by the thread
/// pool to adopt the submitting thread's context inside workers; callers
/// are responsible for restoring the previous value.
void SetCurrentTraceContext(const TraceContext& ctx);

/// Ambient trace id of the calling thread (0 when none) — cheap enough for
/// the logging path.
uint64_t CurrentTraceId();

/// Mints a process-unique trace id (never 0).
uint64_t MintTraceId();

/// Emits a zero-duration event under the current context. `name` must
/// outlive the session (string literals; Registry keys also qualify).
void TraceInstant(const char* name);

/// \brief RAII begin/end event pair under the current context. Unlike
/// obs::Span this does not need a registered ScopeStats and is gated only
/// on TraceEnabled(); use it for events that should appear on the timeline
/// without a wall-time attribution slot (e.g. per-chunk pool work).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (!TraceEnabled()) return;
    name_ = name;
    id_ = internal::TraceBeginSpan(name, &saved_trace_id_, &saved_span_id_);
  }
  ~TraceSpan() {
    if (id_ != 0) {
      internal::TraceEndSpan(name_, id_, saved_trace_id_, saved_span_id_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t id_ = 0;
  uint64_t saved_trace_id_ = 0;
  uint64_t saved_span_id_ = 0;
};

/// \brief Establishes a per-request trace id for the enclosed scope: mints
/// a fresh id when none is ambient, inherits the existing one otherwise
/// (so per-tweet requests replayed inside a batch share the batch's id).
/// Restores the previous context on destruction.
class TraceRequestScope {
 public:
  TraceRequestScope() {
    if (!TraceEnabled()) return;
    const TraceContext ctx = CurrentTraceContext();
    if (ctx.trace_id != 0) return;  // nested: inherit the ambient id
    saved_ = ctx;
    TraceContext fresh = ctx;
    fresh.trace_id = MintTraceId();
    SetCurrentTraceContext(fresh);
    minted_ = true;
  }
  ~TraceRequestScope() {
    if (minted_) SetCurrentTraceContext(saved_);
  }

  TraceRequestScope(const TraceRequestScope&) = delete;
  TraceRequestScope& operator=(const TraceRequestScope&) = delete;

 private:
  TraceContext saved_;
  bool minted_ = false;
};

}  // namespace retina::obs

#endif  // RETINA_COMMON_TRACE_H_
