// retina::par — deterministic parallel-for / parallel-reduce helpers.
//
// Determinism contract: the chunk layout produced by MakeChunks depends
// only on (n, grain) — never on the thread count — and ParallelReduce
// combines per-chunk results in ascending chunk-index order. A caller that
// (a) makes each chunk's computation a pure function of its ChunkRange and
// (b) derives any randomness from an explicit seed via Rng::Stream keyed by
// a chunk- or item-index is bit-identical at any thread count, including 1.
//
// Work runs on the global pool (common/thread_pool.h) sized from the
// RETINA_NUM_THREADS environment override; pass an explicit pool to pin a
// different size (benchmarks do this for thread-scaling curves).

#ifndef RETINA_COMMON_PARALLEL_H_
#define RETINA_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/thread_pool.h"

namespace retina::par {

/// Half-open index range [begin, end) with its position in the chunk list.
struct ChunkRange {
  size_t index = 0;
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
};

/// Splits [0, n) into chunks of at least `grain` items each. The layout is
/// a pure function of (n, grain): chunk sizes are
/// max(grain, ceil(n / kMaxChunksPerLoop)), so small loops get one chunk
/// per `grain` items and large loops are capped at kMaxChunksPerLoop
/// chunks. grain == 0 is treated as 1.
std::vector<ChunkRange> MakeChunks(size_t n, size_t grain);

/// Upper bound on chunks per parallel loop. A constant (not a multiple of
/// the thread count) so chunk layout — and therefore any per-chunk RNG or
/// reduction order — is identical at every thread count.
inline constexpr size_t kMaxChunksPerLoop = 32;

/// Runs body(i) for every i in [0, n). The body must only touch state
/// disjoint per index (e.g. out[i]). Blocks until done; rethrows the
/// lowest-chunk exception.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t)>& body,
                 ThreadPool* pool = nullptr);

/// Runs body(chunk) for every chunk of MakeChunks(n, grain). Use when the
/// body carries per-chunk state (an accumulator, an Rng stream).
void ParallelForChunks(size_t n, size_t grain,
                       const std::function<void(const ChunkRange&)>& body,
                       ThreadPool* pool = nullptr);

/// Maps every chunk to a T and folds the per-chunk values in chunk-index
/// order: reduce(reduce(init, map(chunk0)), map(chunk1)) ... The ordered
/// fold is what makes floating-point reductions bit-identical at any
/// thread count.
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(size_t n, size_t grain, T init, MapFn map, ReduceFn reduce,
                 ThreadPool* pool = nullptr) {
  const std::vector<ChunkRange> chunks = MakeChunks(n, grain);
  if (chunks.empty()) return init;
  std::vector<T> partial(chunks.size(), init);
  ParallelForChunks(
      n, grain,
      [&](const ChunkRange& chunk) { partial[chunk.index] = map(chunk); },
      pool);
  T acc = std::move(init);
  for (size_t c = 0; c < chunks.size(); ++c) {
    acc = reduce(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace retina::par

#endif  // RETINA_COMMON_PARALLEL_H_
