#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <vector>

#include "common/logging.h"

namespace retina::obs {

namespace {

struct TraceEvent {
  enum class Kind : uint8_t { kBegin, kEnd, kInstant };

  uint64_t ts_ns = 0;  ///< steady-clock nanoseconds since the session epoch
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  const char* name = nullptr;
  Kind kind = Kind::kInstant;
};

// Single-writer bounded event buffer: the owning thread appends, the
// exporter reads from a quiescent point (release store on size_ pairs with
// the exporter's acquire load). On overflow new events are dropped and
// counted — the instrumented thread never blocks and never reallocates.
class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity) : events_(capacity) {}

  void Push(const TraceEvent& e) {
    const size_t n = size_.load(std::memory_order_relaxed);
    if (n >= events_.size()) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    events_[n] = e;
    size_.store(n + 1, std::memory_order_release);
  }

  // Exporter-side accessors; valid once the writer is quiescent.
  size_t Size() const { return size_.load(std::memory_order_acquire); }
  uint64_t Dropped() const { return dropped_.load(std::memory_order_relaxed); }
  const TraceEvent& At(size_t i) const { return events_[i]; }

  // Reset for a new session; only safe while the owning thread is not
  // emitting (StartTracing's quiescence requirement).
  void Reset(size_t capacity) {
    events_.assign(capacity, TraceEvent{});
    size_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<TraceEvent> events_;
  std::atomic<size_t> size_{0};
  std::atomic<uint64_t> dropped_{0};
};

std::mutex g_buffers_mu;
// One buffer per thread that ever emitted, in first-emission order (the
// index doubles as the exported tid). Leaked on purpose, like the
// Registry: threads may outlive the session and re-emit next session.
std::vector<TraceBuffer*>& Buffers() {
  static std::vector<TraceBuffer*>* buffers = new std::vector<TraceBuffer*>();
  return *buffers;
}

std::atomic<size_t> g_buffer_capacity{kDefaultTraceBufferCapacity};
std::atomic<int64_t> g_epoch_ns{0};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<uint64_t> g_next_trace_id{1};

thread_local TraceContext t_trace_ctx;

TraceBuffer* ThreadBuffer() {
  thread_local TraceBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    buffer = new TraceBuffer(g_buffer_capacity.load(std::memory_order_relaxed));
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    Buffers().push_back(buffer);
  }
  return buffer;
}

uint64_t NowNs() {
  const int64_t now = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now().time_since_epoch())
                          .count();
  const int64_t rel = now - g_epoch_ns.load(std::memory_order_relaxed);
  return rel > 0 ? static_cast<uint64_t>(rel) : 0;
}

void Emit(TraceEvent::Kind kind, const char* name, uint64_t span_id,
          uint64_t parent_span_id, uint64_t trace_id) {
  if (!TraceEnabled()) return;  // a span may end after StopTracing
  TraceEvent e;
  e.ts_ns = NowNs();
  e.trace_id = trace_id;
  e.span_id = span_id;
  e.parent_span_id = parent_span_id;
  e.name = name;
  e.kind = kind;
  ThreadBuffer()->Push(e);
}

size_t CapacityFromEnv() {
  if (const char* env = std::getenv("RETINA_TRACE_BUFFER")) {
    const long long n = std::atoll(env);
    if (n > 0) return static_cast<size_t>(n);
  }
  return kDefaultTraceBufferCapacity;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_enabled{false};

uint64_t TraceBeginSpan(const char* name, uint64_t* saved_trace_id,
                        uint64_t* saved_span_id) {
  TraceContext& ctx = t_trace_ctx;
  *saved_trace_id = ctx.trace_id;
  *saved_span_id = ctx.span_id;
  const uint64_t id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  Emit(TraceEvent::Kind::kBegin, name, id, ctx.span_id, ctx.trace_id);
  ctx.span_id = id;
  return id;
}

void TraceEndSpan(const char* name, uint64_t span_id, uint64_t saved_trace_id,
                  uint64_t saved_span_id) {
  TraceContext& ctx = t_trace_ctx;
  Emit(TraceEvent::Kind::kEnd, name, span_id, saved_span_id, ctx.trace_id);
  ctx.trace_id = saved_trace_id;
  ctx.span_id = saved_span_id;
}

}  // namespace internal

void StartTracing(size_t buffer_capacity) {
  if constexpr (!kCompiledIn) return;
  const size_t cap =
      buffer_capacity == 0 ? CapacityFromEnv() : buffer_capacity;
  g_buffer_capacity.store(cap, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    for (TraceBuffer* b : Buffers()) b->Reset(cap);
  }
  g_next_span_id.store(1, std::memory_order_relaxed);
  g_next_trace_id.store(1, std::memory_order_relaxed);
  g_epoch_ns.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count(),
                   std::memory_order_relaxed);
  internal::g_trace_enabled.store(true, std::memory_order_release);
  RETINA_LOG(Debug) << "tracing started, buffer capacity " << cap
                    << " events/thread";
}

void StopTracing() {
  if constexpr (!kCompiledIn) return;
  internal::g_trace_enabled.store(false, std::memory_order_release);
  const uint64_t dropped = TraceDroppedEvents();
  if (dropped > 0) {
    RETINA_LOG(Warning)
        << "trace buffers overflowed: " << dropped
        << " events dropped; raise RETINA_TRACE_BUFFER for full timelines";
  }
}

uint64_t TraceDroppedEvents() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  uint64_t total = 0;
  for (const TraceBuffer* b : Buffers()) total += b->Dropped();
  return total;
}

size_t TraceBufferedEvents() {
  std::lock_guard<std::mutex> lock(g_buffers_mu);
  size_t total = 0;
  for (const TraceBuffer* b : Buffers()) total += b->Size();
  return total;
}

TraceContext CurrentTraceContext() {
  if constexpr (!kCompiledIn) return {};
  return t_trace_ctx;
}

void SetCurrentTraceContext(const TraceContext& ctx) {
  if constexpr (!kCompiledIn) return;
  t_trace_ctx = ctx;
}

uint64_t CurrentTraceId() {
  if constexpr (!kCompiledIn) return 0;
  return t_trace_ctx.trace_id;
}

uint64_t MintTraceId() {
  return g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
}

void TraceInstant(const char* name) {
  if (!TraceEnabled()) return;
  const TraceContext& ctx = t_trace_ctx;
  Emit(TraceEvent::Kind::kInstant, name, 0, ctx.span_id, ctx.trace_id);
}

namespace {

void AppendMicros(std::ostringstream& os, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  os << buf;
}

void AppendEscaped(std::ostringstream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

void AppendArgs(std::ostringstream& os, const TraceEvent& e) {
  os << "\"args\":{\"trace_id\":" << e.trace_id
     << ",\"span_id\":" << e.span_id
     << ",\"parent_span_id\":" << e.parent_span_id << "}";
}

void AppendComplete(std::ostringstream& os, bool* first,
                    const TraceEvent& begin, uint64_t end_ns, size_t tid) {
  os << (*first ? "\n" : ",\n") << "    {\"name\":\"";
  AppendEscaped(os, begin.name);
  os << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
  AppendMicros(os, begin.ts_ns);
  os << ",\"dur\":";
  AppendMicros(os, end_ns >= begin.ts_ns ? end_ns - begin.ts_ns : 0);
  os << ",";
  AppendArgs(os, begin);
  os << "}";
  *first = false;
}

}  // namespace

std::string TraceToChromeJson() {
  std::vector<TraceBuffer*> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = Buffers();
  }

  std::ostringstream os;
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  uint64_t dropped = 0;
  size_t buffered = 0;
  for (size_t tid = 0; tid < buffers.size(); ++tid) {
    const TraceBuffer& buf = *buffers[tid];
    const size_t n = buf.Size();
    dropped += buf.Dropped();
    buffered += n;
    if (n == 0) continue;
    os << (first ? "\n" : ",\n")
       << "    {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
       << tid << ",\"args\":{\"name\":\"thread-" << tid << "\"}}";
    first = false;

    // Begin/end pairs are properly nested per thread (RAII emission), so a
    // stack pairs them into complete events; a begin whose end was dropped
    // (full buffer) or never emitted (still open at export) falls through
    // as a bare "B" event, which Perfetto renders as an unfinished slice.
    std::vector<size_t> open;  // indices of unmatched begin events
    for (size_t i = 0; i < n; ++i) {
      const TraceEvent& e = buf.At(i);
      switch (e.kind) {
        case TraceEvent::Kind::kBegin:
          open.push_back(i);
          break;
        case TraceEvent::Kind::kEnd: {
          if (!open.empty() && buf.At(open.back()).span_id == e.span_id) {
            AppendComplete(os, &first, buf.At(open.back()), e.ts_ns, tid);
            open.pop_back();
          }
          break;
        }
        case TraceEvent::Kind::kInstant: {
          os << (first ? "\n" : ",\n") << "    {\"name\":\"";
          AppendEscaped(os, e.name);
          os << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << tid
             << ",\"ts\":";
          AppendMicros(os, e.ts_ns);
          os << ",";
          AppendArgs(os, e);
          os << "}";
          first = false;
          break;
        }
      }
    }
    for (const size_t i : open) {
      const TraceEvent& e = buf.At(i);
      os << (first ? "\n" : ",\n") << "    {\"name\":\"";
      AppendEscaped(os, e.name);
      os << "\",\"ph\":\"B\",\"pid\":1,\"tid\":" << tid << ",\"ts\":";
      AppendMicros(os, e.ts_ns);
      os << ",";
      AppendArgs(os, e);
      os << "}";
      first = false;
    }
  }
  os << (first ? "" : "\n  ") << "],\n  \"otherData\": {"
     << "\"dropped_events\": " << dropped
     << ", \"buffered_events\": " << buffered << ", \"buffer_capacity\": "
     << g_buffer_capacity.load(std::memory_order_relaxed) << "}\n}\n";
  return os.str();
}

}  // namespace retina::obs
