// Bounded MPMC admission queue for the serving path.
//
// The queue is the hand-off point between transport threads (connection
// readers that decode requests) and the worker pool that scores them.
// Capacity is fixed at construction: TryPush never blocks and returns
// false when the queue is full, which is the shed signal — the caller
// answers the client immediately instead of letting an unbounded backlog
// turn overload into unbounded latency. Pop blocks until an item is
// available or the queue is closed and drained, which gives the drain
// state machine its second half: Close() wakes every blocked consumer,
// already-queued items are still handed out (graceful drain finishes
// in-flight work), and only then does Pop start returning false.
//
// Deliberately mutex+condvar rather than lock-free: the per-item work
// behind the queue is a model forward (tens of microseconds and up), so
// queue overhead is noise, and the blocking Pop is exactly what idle
// workers should do.

#ifndef RETINA_COMMON_BOUNDED_QUEUE_H_
#define RETINA_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace retina::par {

/// \brief Fixed-capacity FIFO with non-blocking producers and blocking
/// consumers. All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1; a zero capacity is clamped to 1 so a
  /// misconfigured server sheds everything except one in-flight item
  /// instead of deadlocking.
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Enqueues if there is room. Returns false — without blocking — when
  /// the queue is full or closed; the caller owns the shed/reject reply.
  bool TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    pop_cv_.notify_one();
    return true;
  }

  /// Blocks until an item is available (true) or the queue is closed and
  /// empty (false). Items queued before Close() are always delivered.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    pop_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking multi-item drain: moves up to `max_items` items from the
  /// front of the queue onto the back of `*out`, preserving FIFO order,
  /// and returns how many were moved (0 when the queue is momentarily
  /// empty). Items queued before Close() are still handed out, exactly as
  /// with Pop — this is the coalescing dispatcher's peek-ahead, and it
  /// must never turn a graceful drain into a drop.
  size_t TryPopBatch(std::vector<T>* out, size_t max_items) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t moved = 0;
    while (moved < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    return moved;
  }

  /// Blocking batch pop: waits like Pop for the first item, then drains
  /// whatever else is already queued — up to `max_items` total, front to
  /// back — without blocking again. Returns false only when the queue is
  /// closed and empty; otherwise at least one item was appended to `*out`.
  /// A contiguous FIFO run, never a reordering: consumers see items in
  /// exactly the order producers enqueued them.
  bool PopBatch(std::vector<T>* out, size_t max_items) {
    if (max_items == 0) max_items = 1;
    std::unique_lock<std::mutex> lock(mu_);
    pop_cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    size_t moved = 0;
    while (moved < max_items && !items_.empty()) {
      out->push_back(std::move(items_.front()));
      items_.pop_front();
      ++moved;
    }
    return true;
  }

  /// Stops admission and wakes every blocked Pop. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    pop_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable pop_cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace retina::par

#endif  // RETINA_COMMON_BOUNDED_QUEUE_H_
