#include "store/bloom.h"

#include <algorithm>
#include <cmath>

namespace retina::store {
namespace {

// Probes per key for a bits-per-key budget: k = round(b * ln 2), the value
// that minimizes the FP rate of a Bloom filter with b bits per key.
uint32_t ProbesForBits(double bits_per_key) {
  const double k = bits_per_key * 0.69314718055994531;  // ln 2
  return static_cast<uint32_t>(
      std::clamp(std::lround(k), 1L, 30L));
}

}  // namespace

uint64_t BloomFilter::HashKey(uint64_t key) {
  // splitmix64 finalizer: a full-avalanche 64-bit mix, so sequential user
  // ids (the common case) spread uniformly over the bit array.
  uint64_t h = key + 0x9E3779B97F4A7C15ULL;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBULL;
  return h ^ (h >> 31);
}

BloomFilter BloomFilter::Build(const std::vector<uint64_t>& keys,
                               const BloomOptions& options) {
  BloomFilter filter;
  if (keys.empty()) return filter;
  const double bpk = std::max(1.0, options.bits_per_key);
  uint64_t bits = static_cast<uint64_t>(
      std::llround(bpk * static_cast<double>(keys.size())));
  bits = std::max<uint64_t>(bits, 64);
  const uint64_t bytes = (bits + 7) / 8;
  filter.bits_.assign(bytes, '\0');
  filter.num_probes_ = ProbesForBits(bpk);
  const uint64_t nbits = bytes * 8;
  for (const uint64_t key : keys) {
    const uint64_t h = HashKey(key);
    // Double hashing: probe_i = h1 + i * h2 (mod nbits). h2 is forced odd
    // so the probe sequence cycles through distinct positions.
    uint64_t h1 = h;
    const uint64_t h2 = (h >> 32) | 1;
    for (uint32_t i = 0; i < filter.num_probes_; ++i) {
      const uint64_t bit = h1 % nbits;
      filter.bits_[bit / 8] |= static_cast<char>(1u << (bit % 8));
      h1 += h2;
    }
  }
  return filter;
}

bool BloomFilter::MayContain(uint64_t key) const {
  if (bits_.empty()) return false;
  const uint64_t nbits = bits_.size() * 8;
  const uint64_t h = HashKey(key);
  uint64_t h1 = h;
  const uint64_t h2 = (h >> 32) | 1;
  for (uint32_t i = 0; i < num_probes_; ++i) {
    const uint64_t bit = h1 % nbits;
    if ((static_cast<unsigned char>(bits_[bit / 8]) & (1u << (bit % 8))) ==
        0) {
      return false;
    }
    h1 += h2;
  }
  return true;
}

Result<BloomFilter> BloomFilter::FromParts(std::string bits,
                                           uint32_t num_probes) {
  if (bits.empty() != (num_probes == 0)) {
    return Status::InvalidArgument(
        "bloom filter parts inconsistent: " + std::to_string(bits.size()) +
        " filter bytes with " + std::to_string(num_probes) + " probes");
  }
  if (num_probes > 30) {
    return Status::InvalidArgument("bloom filter probe count out of range: " +
                                   std::to_string(num_probes));
  }
  BloomFilter filter;
  filter.bits_ = std::move(bits);
  filter.num_probes_ = num_probes;
  return filter;
}

}  // namespace retina::store
