// Per-block Bloom filter for the disk-backed user feature store.
//
// Each immutable block of the store carries one filter over the user ids it
// holds, so a lookup for a user the block does not contain skips the block
// load (mmap touch + checksum verify + entry parse) entirely — the property
// that makes absent-user lookups nearly free. The design follows the
// standard cache-local Bloom recipe the LSM literature settled on (RocksDB
// full filters; Monkey allocates the same bits-per-key knob per level): a
// single bit array, k probes derived from one 64-bit hash by double
// hashing, k chosen from bits-per-key as round(bits_per_key * ln 2).
//
// The filter is a pure function of the inserted key set and its options, so
// serialized filters are deterministic and a store round trip is bit-exact.
// False-positive behavior is pinned by tests: one-sided error (no false
// negatives, ever), and a measured FP rate near the theoretical
// (1 - e^{-kn/m})^k ≈ 0.6185^{bits_per_key} for the default sizing.

#ifndef RETINA_STORE_BLOOM_H_
#define RETINA_STORE_BLOOM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace retina::store {

struct BloomOptions {
  /// Filter bits allocated per inserted key. 10 bits/key ≈ 0.8% FP with
  /// the derived 7 probes; the store exposes this as its sizing knob.
  double bits_per_key = 10.0;
};

/// \brief Immutable Bloom filter over 64-bit keys.
class BloomFilter {
 public:
  /// Builds a filter sized for `keys.size()` entries at the given
  /// bits-per-key. An empty key set yields an empty filter that rejects
  /// every probe.
  static BloomFilter Build(const std::vector<uint64_t>& keys,
                           const BloomOptions& options = {});

  /// True if `key` may have been inserted; false means definitely absent.
  bool MayContain(uint64_t key) const;

  /// Number of probe positions per key (0 for an empty filter).
  uint32_t num_probes() const { return num_probes_; }
  /// Filter size in bits.
  uint64_t num_bits() const { return bits_.size() * 8; }

  /// Serialized form: the raw bit array. Probes are stored by the caller
  /// (the store index) alongside, so filters round-trip bit-exactly.
  const std::string& bits() const { return bits_; }

  /// Reconstructs a filter from FromParts(bits(), num_probes()). Rejects
  /// an inconsistent pair (probes without bits) so a stale index entry
  /// surfaces as a Status error, not UB.
  static Result<BloomFilter> FromParts(std::string bits,
                                       uint32_t num_probes);

  /// Stable 64-bit key mix used for probe derivation (exposed for tests).
  static uint64_t HashKey(uint64_t key);

 private:
  BloomFilter() = default;

  std::string bits_;     // bit array, little-endian bit order within bytes
  uint32_t num_probes_ = 0;
};

}  // namespace retina::store

#endif  // RETINA_STORE_BLOOM_H_
