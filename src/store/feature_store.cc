#include "store/feature_store.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#define RETINA_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "io/checkpoint.h"

namespace retina::store {
namespace {

constexpr size_t kHeaderSize = 8 + 4 + 1 + 3;  // magic, version, endian, pad

// FNV-1a 64-bit, the same checksum the RETINAc1 checkpoint container uses.
uint64_t Fnv1a(const unsigned char* data, size_t n) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void AppendF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

// Loads from the mapped file. The endian tag was checked at Open, so the
// file's byte order is the host's and memcpy decodes directly.
uint32_t LoadU32(const unsigned char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const unsigned char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double LoadF64(const unsigned char* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint8_t HostEndianTag() {
  return std::endian::native == std::endian::little ? 1 : 2;
}

Status CorruptBlock(size_t block, const std::string& what) {
  return Status::IOError("corrupt store block " + std::to_string(block) +
                         ": " + what);
}

// Index entry names under index.ckpt. Kept under one prefix so a store
// index is recognizable at a glance in checkpoint dumps.
constexpr char kIdxVersion[] = "store/format_version";
constexpr char kIdxDim[] = "store/dim";
constexpr char kIdxEntries[] = "store/num_entries";
constexpr char kIdxBlockEntries[] = "store/block_entries";
constexpr char kIdxBitsPerKey[] = "store/bits_per_key";
constexpr char kIdxBloomProbes[] = "store/bloom_probes";
constexpr char kIdxDataSize[] = "store/data_file_size";
constexpr char kIdxFirst[] = "store/block_first_user";
constexpr char kIdxLast[] = "store/block_last_user";
constexpr char kIdxOffset[] = "store/block_offset";
constexpr char kIdxSize[] = "store/block_size";
constexpr char kIdxChecksum[] = "store/block_checksum";
constexpr char kIdxBloom[] = "store/block_bloom";

}  // namespace

// ---------------------------------------------------------------- builder --

Result<std::unique_ptr<FeatureStoreBuilder>> FeatureStoreBuilder::Create(
    const std::string& dir, size_t dim, FeatureStoreOptions options) {
  if (dim == 0) {
    return Status::InvalidArgument("feature store dim must be positive");
  }
  if (options.block_entries == 0) options.block_entries = 1;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create store directory " + dir + ": " +
                           ec.message());
  }
  auto builder =
      std::unique_ptr<FeatureStoreBuilder>(new FeatureStoreBuilder());
  builder->dir_ = dir;
  builder->dim_ = dim;
  builder->options_ = options;
  builder->tmp_path_ =
      (std::filesystem::path(dir) / kStoreDataFile).string() + ".tmp";
  builder->file_ = std::fopen(builder->tmp_path_.c_str(), "wb");
  if (builder->file_ == nullptr) {
    return Status::IOError("cannot open for writing: " + builder->tmp_path_);
  }
  std::string header(kStoreMagic, sizeof(kStoreMagic));
  AppendU32(&header, kStoreVersion);
  header.push_back(static_cast<char>(HostEndianTag()));
  header.append(3, '\0');
  if (std::fwrite(header.data(), 1, header.size(), builder->file_) !=
      header.size()) {
    return Status::IOError("short write: " + builder->tmp_path_);
  }
  builder->file_offset_ = header.size();
  return builder;
}

FeatureStoreBuilder::~FeatureStoreBuilder() {
  if (file_ != nullptr) std::fclose(file_);
  if (!finished_ && !tmp_path_.empty()) std::remove(tmp_path_.c_str());
}

Status FeatureStoreBuilder::Add(uint64_t user, const SparseVec& features) {
  if (finished_ || file_ == nullptr) {
    return Status::FailedPrecondition("builder already finished");
  }
  if (features.dim() != dim_) {
    return Status::InvalidArgument(
        "feature dim mismatch: store dim " + std::to_string(dim_) +
        ", entry dim " + std::to_string(features.dim()));
  }
  if (static_cast<int64_t>(user) <= last_user_) {
    return Status::InvalidArgument(
        "store entries must be added in strictly ascending user order "
        "(got " + std::to_string(user) + " after " +
        std::to_string(last_user_) + ")");
  }
  last_user_ = static_cast<int64_t>(user);

  block_users_.push_back(user);
  block_offsets_.push_back(block_payload_.size());
  AppendU32(&block_payload_, static_cast<uint32_t>(features.nnz()));
  for (const uint32_t idx : features.indices()) {
    AppendU32(&block_payload_, idx);
  }
  for (const double v : features.values()) AppendF64(&block_payload_, v);
  ++entries_added_;

  if (block_users_.size() >= options_.block_entries) return FlushBlock();
  return Status::OK();
}

Status FeatureStoreBuilder::FlushBlock() {
  if (block_users_.empty()) return Status::OK();
  const size_t n = block_users_.size();
  std::string block;
  block.reserve(8 + 16 * n + block_payload_.size());
  AppendU64(&block, n);
  for (const uint64_t u : block_users_) AppendU64(&block, u);
  for (const uint64_t off : block_offsets_) AppendU64(&block, off);
  block.append(block_payload_);

  const BloomFilter bloom =
      BloomFilter::Build(block_users_, {options_.bits_per_key});
  bloom_probes_ = bloom.num_probes();

  index_first_.push_back(static_cast<int64_t>(block_users_.front()));
  index_last_.push_back(static_cast<int64_t>(block_users_.back()));
  index_offset_.push_back(static_cast<int64_t>(file_offset_));
  index_size_.push_back(static_cast<int64_t>(block.size()));
  index_checksum_.push_back(static_cast<int64_t>(
      Fnv1a(reinterpret_cast<const unsigned char*>(block.data()),
            block.size())));
  index_bloom_.push_back(bloom.bits());

  if (std::fwrite(block.data(), 1, block.size(), file_) != block.size()) {
    return Status::IOError("short write: " + tmp_path_);
  }
  file_offset_ += block.size();
  block_users_.clear();
  block_offsets_.clear();
  block_payload_.clear();
  return Status::OK();
}

Status FeatureStoreBuilder::Finish() {
  if (finished_ || file_ == nullptr) {
    return Status::FailedPrecondition("builder already finished");
  }
  RETINA_RETURN_NOT_OK(FlushBlock());
  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  if (!close_ok) {
    std::remove(tmp_path_.c_str());
    return Status::IOError("close failed: " + tmp_path_);
  }
  const std::string data_path =
      (std::filesystem::path(dir_) / kStoreDataFile).string();
  if (std::rename(tmp_path_.c_str(), data_path.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return Status::IOError("cannot rename " + tmp_path_ + " to " + data_path);
  }
  finished_ = true;

  io::Checkpoint index;
  index.PutI64(kIdxVersion, kStoreVersion);
  index.PutI64(kIdxDim, static_cast<int64_t>(dim_));
  index.PutI64(kIdxEntries, static_cast<int64_t>(entries_added_));
  index.PutI64(kIdxBlockEntries,
               static_cast<int64_t>(options_.block_entries));
  index.PutF64(kIdxBitsPerKey, options_.bits_per_key);
  index.PutI64(kIdxBloomProbes, static_cast<int64_t>(bloom_probes_));
  index.PutI64(kIdxDataSize, static_cast<int64_t>(file_offset_));
  index.PutI64List(kIdxFirst, index_first_);
  index.PutI64List(kIdxLast, index_last_);
  index.PutI64List(kIdxOffset, index_offset_);
  index.PutI64List(kIdxSize, index_size_);
  index.PutI64List(kIdxChecksum, index_checksum_);
  index.PutStringList(kIdxBloom, index_bloom_);
  return index.WriteFile(
      (std::filesystem::path(dir_) / kStoreIndexFile).string());
}

// ----------------------------------------------------------------- reader --

FeatureStore::ObsHooks FeatureStore::ObsHooks::Resolve() {
  obs::Registry& reg = obs::Registry::Global();
  return {
      reg.GetCounter("store.lookups"),
      reg.GetCounter("store.found"),
      reg.GetCounter("store.range_skips"),
      reg.GetCounter("store.bloom.skips"),
      reg.GetCounter("store.bloom.false_positives"),
      reg.GetCounter("store.blocks_verified"),
  };
}

Result<std::unique_ptr<FeatureStore>> FeatureStore::Open(
    const std::string& dir) {
  const std::string index_path =
      (std::filesystem::path(dir) / kStoreIndexFile).string();
  const std::string data_path =
      (std::filesystem::path(dir) / kStoreDataFile).string();

  auto index_result = io::Checkpoint::ReadFile(index_path);
  if (!index_result.ok()) {
    return Status::IOError("cannot read store index: " +
                           index_result.status().message());
  }
  const io::Checkpoint& index = index_result.ValueOrDie();

  auto store = std::unique_ptr<FeatureStore>(new FeatureStore());
  int64_t version = 0, dim = 0, entries = 0, probes = 0, data_size = 0;
  RETINA_RETURN_NOT_OK(index.GetI64(kIdxVersion, &version));
  if (version != kStoreVersion) {
    return Status::IOError("unsupported store format version " +
                           std::to_string(version));
  }
  RETINA_RETURN_NOT_OK(index.GetI64(kIdxDim, &dim));
  RETINA_RETURN_NOT_OK(index.GetI64(kIdxEntries, &entries));
  RETINA_RETURN_NOT_OK(index.GetI64(kIdxBloomProbes, &probes));
  RETINA_RETURN_NOT_OK(index.GetI64(kIdxDataSize, &data_size));
  RETINA_RETURN_NOT_OK(index.GetF64(kIdxBitsPerKey, &store->bits_per_key_));
  if (dim <= 0 || entries < 0 || data_size < 0 || probes < 0) {
    return Status::IOError("corrupt store index: negative header field");
  }
  store->dim_ = static_cast<size_t>(dim);
  store->num_entries_ = static_cast<size_t>(entries);

  std::vector<int64_t> first, last, offset, size, checksum;
  std::vector<std::string> blooms;
  RETINA_RETURN_NOT_OK(index.GetI64List(kIdxFirst, &first));
  RETINA_RETURN_NOT_OK(index.GetI64List(kIdxLast, &last));
  RETINA_RETURN_NOT_OK(index.GetI64List(kIdxOffset, &offset));
  RETINA_RETURN_NOT_OK(index.GetI64List(kIdxSize, &size));
  RETINA_RETURN_NOT_OK(index.GetI64List(kIdxChecksum, &checksum));
  RETINA_RETURN_NOT_OK(index.GetStringList(kIdxBloom, &blooms));
  const size_t n_blocks = first.size();
  if (last.size() != n_blocks || offset.size() != n_blocks ||
      size.size() != n_blocks || checksum.size() != n_blocks ||
      blooms.size() != n_blocks) {
    return Status::IOError(
        "corrupt store index: per-block lists have mismatched lengths");
  }

  // Map the data file before validating block extents against its size.
  {
#ifdef RETINA_STORE_HAVE_MMAP
    const int fd = ::open(data_path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::IOError("cannot open store data file: " + data_path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError("cannot stat store data file: " + data_path);
    }
    store->data_size_ = static_cast<size_t>(st.st_size);
    if (store->data_size_ > 0) {
      void* mapped = ::mmap(nullptr, store->data_size_, PROT_READ,
                            MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (mapped == MAP_FAILED) {
        return Status::IOError("mmap failed on store data file: " +
                               data_path);
      }
      store->data_ = static_cast<const unsigned char*>(mapped);
      store->mmapped_ = true;
    } else {
      ::close(fd);
    }
#else
    std::FILE* f = std::fopen(data_path.c_str(), "rb");
    if (f == nullptr) {
      return Status::IOError("cannot open store data file: " + data_path);
    }
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      store->heap_fallback_.append(buf, n);
    }
    std::fclose(f);
    store->data_ =
        reinterpret_cast<const unsigned char*>(store->heap_fallback_.data());
    store->data_size_ = store->heap_fallback_.size();
#endif
  }

  if (store->data_size_ != static_cast<size_t>(data_size)) {
    return Status::IOError(
        "store data file truncated or grew: index records " +
        std::to_string(data_size) + " bytes, file has " +
        std::to_string(store->data_size_));
  }
  if (store->data_size_ < kHeaderSize ||
      std::memcmp(store->data_, kStoreMagic, sizeof(kStoreMagic)) != 0) {
    return Status::IOError("corrupt store data file: bad magic");
  }
  if (LoadU32(store->data_ + 8) != kStoreVersion) {
    return Status::IOError("corrupt store data file: bad version");
  }
  if (store->data_[12] != HostEndianTag()) {
    return Status::IOError("store data file endianness mismatch");
  }

  store->block_first_.reserve(n_blocks);
  store->block_last_.reserve(n_blocks);
  store->block_offset_.reserve(n_blocks);
  store->block_size_.reserve(n_blocks);
  store->block_checksum_.reserve(n_blocks);
  store->block_bloom_.reserve(n_blocks);
  uint64_t prev_end = kHeaderSize;
  int64_t prev_last = -1;
  for (size_t b = 0; b < n_blocks; ++b) {
    if (first[b] < 0 || last[b] < first[b] || first[b] <= prev_last) {
      return Status::IOError(
          "corrupt store index: block user ranges not ascending");
    }
    const uint64_t off = static_cast<uint64_t>(offset[b]);
    const uint64_t sz = static_cast<uint64_t>(size[b]);
    if (offset[b] < 0 || size[b] <= 0 || off < prev_end ||
        sz > store->data_size_ || off > store->data_size_ - sz) {
      return Status::IOError(
          "corrupt store index: block " + std::to_string(b) +
          " extent [" + std::to_string(off) + ", +" + std::to_string(sz) +
          ") outside the data file");
    }
    auto bloom = BloomFilter::FromParts(blooms[b],
                                        static_cast<uint32_t>(probes));
    if (!bloom.ok()) {
      return Status::IOError("corrupt store index: " +
                             bloom.status().message());
    }
    store->block_first_.push_back(static_cast<uint64_t>(first[b]));
    store->block_last_.push_back(static_cast<uint64_t>(last[b]));
    store->block_offset_.push_back(off);
    store->block_size_.push_back(sz);
    store->block_checksum_.push_back(static_cast<uint64_t>(checksum[b]));
    store->block_bloom_.push_back(std::move(bloom).ValueOrDie());
    prev_end = off + sz;
    prev_last = last[b];
  }
  store->block_verified_.assign(n_blocks, 0);
  store->hooks_ = ObsHooks::Resolve();
  return store;
}

FeatureStore::~FeatureStore() {
#ifdef RETINA_STORE_HAVE_MMAP
  if (mmapped_ && data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), data_size_);
  }
#endif
}

Status FeatureStore::VerifyBlock(size_t b) {
  if (block_verified_[b]) return Status::OK();
  const uint64_t actual =
      Fnv1a(data_ + block_offset_[b], block_size_[b]);
  if (actual != block_checksum_[b]) {
    return CorruptBlock(b, "checksum mismatch");
  }
  block_verified_[b] = 1;
  ++stats_.blocks_verified;
  hooks_.blocks_verified->Add(1);
  return Status::OK();
}

Status FeatureStore::Lookup(uint64_t user, SparseVec* out,
                            LookupOutcome* outcome) {
  ++stats_.lookups;
  hooks_.lookups->Add(1);

  // Index binary search: first block whose last user is >= user.
  const auto it =
      std::lower_bound(block_last_.begin(), block_last_.end(), user);
  if (it == block_last_.end() ||
      user < block_first_[static_cast<size_t>(it - block_last_.begin())]) {
    *outcome = LookupOutcome::kAbsentRange;
    ++stats_.range_skips;
    hooks_.range_skips->Add(1);
    return Status::OK();
  }
  const size_t b = static_cast<size_t>(it - block_last_.begin());

  // Bloom probe: a negative answer skips every byte of the block.
  if (!block_bloom_[b].MayContain(user)) {
    *outcome = LookupOutcome::kAbsentBloom;
    ++stats_.bloom_skips;
    hooks_.bloom_skips->Add(1);
    return Status::OK();
  }

  RETINA_RETURN_NOT_OK(VerifyBlock(b));

  // Decode the block frame (bounds-checked; a verified checksum already
  // makes corruption here essentially impossible, but a stale index entry
  // could frame the wrong bytes).
  const unsigned char* block = data_ + block_offset_[b];
  const uint64_t block_size = block_size_[b];
  if (block_size < 8) return CorruptBlock(b, "shorter than its entry count");
  const uint64_t n = LoadU64(block);
  if (n == 0 || n > (block_size - 8) / 16) {
    return CorruptBlock(b, "entry count inconsistent with block size");
  }
  const unsigned char* users = block + 8;
  const unsigned char* offsets = users + 8 * n;
  const unsigned char* payload = offsets + 8 * n;
  const uint64_t payload_size = block_size - 8 - 16 * n;

  // In-block binary search over the sorted user-id table.
  size_t lo = 0, hi = static_cast<size_t>(n);
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    const uint64_t mid_user = LoadU64(users + 8 * mid);
    if (mid_user < user) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == n || LoadU64(users + 8 * lo) != user) {
    *outcome = LookupOutcome::kAbsentBlock;  // Bloom false positive
    ++stats_.bloom_false_positives;
    hooks_.bloom_false_positives->Add(1);
    return Status::OK();
  }

  const uint64_t entry_off = LoadU64(offsets + 8 * lo);
  if (entry_off > payload_size || payload_size - entry_off < 4) {
    return CorruptBlock(b, "entry offset outside the payload");
  }
  const unsigned char* entry = payload + entry_off;
  const uint32_t nnz = LoadU32(entry);
  if (nnz > dim_ || payload_size - entry_off - 4 <
                        static_cast<uint64_t>(nnz) * 12) {
    return CorruptBlock(b, "entry extends past the payload");
  }
  SparseVec decoded(dim_);
  const unsigned char* idx_bytes = entry + 4;
  const unsigned char* val_bytes = idx_bytes + 4 * static_cast<size_t>(nnz);
  uint32_t prev_idx = 0;
  for (uint32_t i = 0; i < nnz; ++i) {
    const uint32_t idx = LoadU32(idx_bytes + 4 * i);
    if (idx >= dim_ || (i > 0 && idx <= prev_idx)) {
      return CorruptBlock(b, "entry indices not ascending below dim");
    }
    decoded.PushBack(idx, LoadF64(val_bytes + 8 * i));
    prev_idx = idx;
  }
  *out = std::move(decoded);
  *outcome = LookupOutcome::kFound;
  ++stats_.found;
  hooks_.found->Add(1);
  return Status::OK();
}

}  // namespace retina::store
