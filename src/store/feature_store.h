// Disk-backed user feature store: immutable sorted blocks + in-memory
// block index + per-block Bloom filters.
//
// The store makes the serving layer's per-user working set disk-sized
// instead of RAM-sized: user history blocks (sparse feature vectors) are
// written once, sorted by user id, into fixed-fan-out blocks of a single
// data file, and looked up through an in-memory index that knows each
// block's user range, byte extent, FNV-1a-64 checksum, and Bloom filter.
// The serving LRU stays in front as the warm tier; this store is the cold
// tier behind it, and the Bloom filters make lookups for users the store
// does not hold nearly free (no disk touch at all).
//
// On-disk layout (directory with two files, both written atomically via
// temp-file + rename, following the RETINAc1 container conventions):
//
//   blocks.dat   magic "RETINAs1" | u32 version | u8 endian tag | 3 zero
//                then blocks back to back, each:
//                  u64 n                  entries in this block
//                  u64 user_id[n]         ascending
//                  u64 entry_offset[n]    relative to this block's payload
//                  payload: per entry u32 nnz, nnz*u32 indices (ascending),
//                           nnz*f64 values (IEEE-754 bit patterns)
//   index.ckpt   a RETINAc1 io::Checkpoint (versioned, typed entries,
//                trailing FNV-1a-64 checksum) holding the store header
//                (dim, entry count, sizing knobs) and per-block parallel
//                lists: first/last user, offset, byte size, checksum, and
//                the serialized Bloom filter.
//
// Doubles round-trip as bit patterns, so a block read returns exactly the
// SparseVec the builder was handed — the tiered read path is bit-identical
// to recomputing the feature block in process.
//
// Read path: Open mmaps blocks.dat (falling back to a heap buffer where
// mmap is unavailable) and parses only the index; block bytes are touched
// lazily. A Lookup binary-searches the block ranges, probes that block's
// Bloom filter, and only then verifies the block checksum (once per block,
// cached) and binary-searches the in-block user table straight from the
// mapped bytes. Every parse is bounds-checked: truncation, flipped bytes,
// and stale index entries surface as Status errors, never UB.
//
// Not thread-safe: like the serving engine that owns it, one store
// instance per serving thread (the verified-block cache and stats are
// unsynchronized).

#ifndef RETINA_STORE_FEATURE_STORE_H_
#define RETINA_STORE_FEATURE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/obs.h"
#include "common/sparse_vec.h"
#include "common/status.h"
#include "store/bloom.h"

namespace retina::store {

inline constexpr char kStoreMagic[8] = {'R', 'E', 'T', 'I', 'N', 'A', 's', '1'};
inline constexpr uint32_t kStoreVersion = 1;
inline constexpr char kStoreDataFile[] = "blocks.dat";
inline constexpr char kStoreIndexFile[] = "index.ckpt";

struct FeatureStoreOptions {
  /// Users per block. Smaller blocks mean finer Bloom filters and less
  /// wasted checksum work per cold lookup; larger blocks amortize the
  /// per-block index footprint. 64 keeps a cold lookup's checksum scan in
  /// the tens of kilobytes.
  size_t block_entries = 64;
  /// Bloom filter bits per stored user (the Monkey-style sizing knob).
  double bits_per_key = 10.0;
};

/// How a lookup resolved. Everything except kFound means "definitely not
/// in the store" — the Bloom filter is one-sided.
enum class LookupOutcome : uint8_t {
  kFound = 0,        ///< entry located and decoded
  kAbsentRange,      ///< user id outside every block's [first, last] range
  kAbsentBloom,      ///< the owning block's Bloom filter rejected the user
  kAbsentBlock,      ///< Bloom false positive: block searched, user absent
};

/// Lifetime read counters (also mirrored into retina::obs).
struct FeatureStoreStats {
  uint64_t lookups = 0;
  uint64_t found = 0;
  uint64_t range_skips = 0;   ///< kAbsentRange outcomes
  uint64_t bloom_skips = 0;   ///< kAbsentBloom outcomes
  uint64_t bloom_false_positives = 0;  ///< kAbsentBlock outcomes
  uint64_t blocks_verified = 0;  ///< checksum passes (first touch per block)
};

/// \brief Streaming writer: Add users in ascending id order, then Finish.
///
/// Blocks are flushed to the temp data file as they fill, so building a
/// store holds one block — not the population — in memory. Finish seals
/// the data file (atomic rename) and writes the index checkpoint; a
/// builder destroyed before Finish removes its temp file.
class FeatureStoreBuilder {
 public:
  /// Creates `dir` if needed and opens the temp data file.
  static Result<std::unique_ptr<FeatureStoreBuilder>> Create(
      const std::string& dir, size_t dim, FeatureStoreOptions options = {});

  ~FeatureStoreBuilder();

  FeatureStoreBuilder(const FeatureStoreBuilder&) = delete;
  FeatureStoreBuilder& operator=(const FeatureStoreBuilder&) = delete;

  /// Appends one user's feature block. Ids must be strictly ascending and
  /// `features.dim()` must equal the builder's dim.
  Status Add(uint64_t user, const SparseVec& features);

  /// Flushes the tail block, atomically publishes blocks.dat, and writes
  /// index.ckpt. The builder is spent afterwards.
  Status Finish();

  size_t entries_added() const { return entries_added_; }

 private:
  FeatureStoreBuilder() = default;

  Status FlushBlock();

  std::string dir_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  uint64_t file_offset_ = 0;  // bytes written so far (incl. header)
  size_t dim_ = 0;
  FeatureStoreOptions options_;
  bool finished_ = false;
  size_t entries_added_ = 0;
  int64_t last_user_ = -1;

  // Current (unflushed) block.
  std::vector<uint64_t> block_users_;
  std::vector<uint64_t> block_offsets_;
  std::string block_payload_;

  // Per-flushed-block index rows.
  std::vector<int64_t> index_first_;
  std::vector<int64_t> index_last_;
  std::vector<int64_t> index_offset_;
  std::vector<int64_t> index_size_;
  std::vector<int64_t> index_checksum_;  // u64 checksum, bit-cast
  std::vector<std::string> index_bloom_;
  uint32_t bloom_probes_ = 0;
};

/// \brief mmap-backed reader over a finished store directory.
class FeatureStore {
 public:
  static Result<std::unique_ptr<FeatureStore>> Open(const std::string& dir);

  ~FeatureStore();

  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  /// Resolves `user`. On kFound, `*out` is the stored SparseVec
  /// (bit-identical to what the builder was handed). Other outcomes leave
  /// `*out` untouched. A non-OK Status means the store is corrupt
  /// (checksum mismatch, truncated or inconsistent block bytes); the
  /// store stays usable for blocks that still verify.
  Status Lookup(uint64_t user, SparseVec* out, LookupOutcome* outcome);

  size_t dim() const { return dim_; }
  size_t num_entries() const { return num_entries_; }
  size_t num_blocks() const { return block_offset_.size(); }
  double bits_per_key() const { return bits_per_key_; }
  const FeatureStoreStats& stats() const { return stats_; }

 private:
  FeatureStore() = default;

  Status VerifyBlock(size_t b);

  // Mapped (or heap-loaded) data file.
  const unsigned char* data_ = nullptr;
  size_t data_size_ = 0;
  bool mmapped_ = false;
  std::string heap_fallback_;  // owns bytes when mmap was unavailable

  size_t dim_ = 0;
  size_t num_entries_ = 0;
  double bits_per_key_ = 10.0;

  // Parallel per-block index arrays (decoded from index.ckpt).
  std::vector<uint64_t> block_first_;
  std::vector<uint64_t> block_last_;
  std::vector<uint64_t> block_offset_;
  std::vector<uint64_t> block_size_;
  std::vector<uint64_t> block_checksum_;
  std::vector<BloomFilter> block_bloom_;
  std::vector<uint8_t> block_verified_;

  FeatureStoreStats stats_;

  /// Registry instruments, resolved once at Open. Observational mirrors of
  /// stats_ (obs-on ≡ obs-off: nothing here affects lookup results).
  struct ObsHooks {
    static ObsHooks Resolve();
    obs::Counter* lookups;
    obs::Counter* found;
    obs::Counter* range_skips;
    obs::Counter* bloom_skips;
    obs::Counter* bloom_false_positives;
    obs::Counter* blocks_verified;
  };
  ObsHooks hooks_ = {};
};

}  // namespace retina::store

#endif  // RETINA_STORE_FEATURE_STORE_H_
