#include "hatedetect/annotation.h"

#include <algorithm>

#include "common/rng.h"
#include "hatedetect/davidson.h"
#include "ml/metrics.h"

namespace retina::hatedetect {

double KrippendorffAlpha(const std::vector<std::vector<int>>& ratings) {
  // Binary nominal data. Do = observed pairwise disagreement within items;
  // De = expected disagreement from the pooled distribution.
  double pairs = 0.0, disagreements = 0.0;
  double n_total = 0.0, n_ones = 0.0;
  for (const auto& item : ratings) {
    const size_t m = item.size();
    if (m < 2) continue;
    size_t ones = 0;
    for (int r : item) ones += (r == 1);
    n_total += static_cast<double>(m);
    n_ones += static_cast<double>(ones);
    const double zeros = static_cast<double>(m - ones);
    disagreements += static_cast<double>(ones) * zeros;
    pairs += static_cast<double>(m) * static_cast<double>(m - 1) / 2.0;
  }
  if (pairs <= 0.0 || n_total <= 1.0) return 0.0;
  const double d_o = disagreements / pairs;
  const double p1 = n_ones / n_total;
  // Expected disagreement with finite-sample correction.
  const double d_e =
      2.0 * p1 * (n_total - n_ones) / (n_total - 1.0);
  if (d_e <= 0.0) return 1.0;
  return 1.0 - d_o / d_e;
}

Result<AnnotationReport> AnnotateWorld(datagen::SyntheticWorld* world,
                                       const AnnotationOptions& options) {
  auto& tweets = world->mutable_tweets();
  if (tweets.empty()) {
    return Status::FailedPrecondition("AnnotateWorld: world has no tweets");
  }
  Rng rng(options.seed);
  AnnotationReport report;

  // --- Gold subset with simulated annotator panel --------------------------
  const size_t n = tweets.size();
  const size_t n_gold = std::max<size_t>(
      10, static_cast<size_t>(options.gold_fraction * static_cast<double>(n)));
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(&order);
  std::vector<size_t> gold_idx(order.begin(),
                               order.begin() + std::min(n, n_gold));

  std::vector<std::vector<int>> panel(gold_idx.size(),
                                      std::vector<int>(3, 0));
  std::vector<int> gold_labels(gold_idx.size());
  for (size_t g = 0; g < gold_idx.size(); ++g) {
    const int truth = tweets[gold_idx[g]].is_hateful ? 1 : 0;
    int votes = 0;
    for (int a = 0; a < 3; ++a) {
      int label = truth;
      const double flip_prob = truth == 1
                                   ? options.annotator_miss_rate
                                   : options.annotator_false_alarm_rate;
      if (rng.Bernoulli(flip_prob)) label = 1 - label;
      panel[g][static_cast<size_t>(a)] = label;
      votes += label;
    }
    gold_labels[g] = votes >= 2 ? 1 : 0;
  }
  report.gold_tweets = gold_idx.size();
  report.krippendorff_alpha = KrippendorffAlpha(panel);

  // --- Gold train / eval split ------------------------------------------------
  const size_t n_eval = std::max<size_t>(
      5, static_cast<size_t>(options.eval_fraction *
                             static_cast<double>(gold_idx.size())));
  std::vector<std::vector<std::string>> train_docs, eval_docs;
  std::vector<int> train_y, eval_y;
  for (size_t g = 0; g < gold_idx.size(); ++g) {
    const auto& toks = tweets[gold_idx[g]].tokens;
    if (g < n_eval) {
      eval_docs.push_back(toks);
      eval_y.push_back(gold_labels[g]);
    } else {
      train_docs.push_back(toks);
      train_y.push_back(gold_labels[g]);
    }
  }

  // --- Fine-tuned Davidson model -----------------------------------------------
  DavidsonOptions fine_opts;
  DavidsonClassifier finetuned(fine_opts, &world->lexicon());
  RETINA_RETURN_NOT_OK(finetuned.Fit(train_docs, train_y));
  {
    const Vec scores = finetuned.PredictProbaBatch(eval_docs);
    report.finetuned_auc = ml::RocAuc(eval_y, scores);
    report.finetuned_macro_f1 = ml::MacroF1(eval_y, ml::Threshold(scores));
  }

  // --- "Pre-trained" model: the published Davidson model applied to a new
  // corpus. Two context gaps are simulated: (a) its learned n-gram
  // vocabulary does not transfer, leaving only lexicon features; (b) its
  // notion of hate was fit on another domain, approximated by training
  // against a purely lexical labeling (any lexicon hit = hateful) instead
  // of this corpus' gold labels — so implicit hate is missed and benign
  // colloquial usage is false-flagged, as the paper observed (0.79 AUC /
  // 0.48 macro-F1 vs 0.85 / 0.59 after fine-tuning).
  DavidsonOptions pre_opts;
  pre_opts.use_tfidf = false;
  std::vector<int> lexical_y(train_docs.size());
  for (size_t i = 0; i < train_docs.size(); ++i) {
    lexical_y[i] = world->lexicon().CountHits(train_docs[i]) > 0 ? 1 : 0;
  }
  DavidsonClassifier pretrained(pre_opts, &world->lexicon());
  RETINA_RETURN_NOT_OK(pretrained.Fit(train_docs, lexical_y));
  {
    const Vec scores = pretrained.PredictProbaBatch(eval_docs);
    report.pretrained_auc = ml::RocAuc(eval_y, scores);
    report.pretrained_macro_f1 = ml::MacroF1(eval_y, ml::Threshold(scores));
  }

  // --- Machine-annotate the rest ------------------------------------------------
  std::vector<bool> is_gold(n, false);
  for (size_t g : gold_idx) is_gold[g] = true;
  size_t machine_total = 0, machine_wrong = 0;
  for (size_t i = 0; i < n; ++i) {
    if (is_gold[i]) {
      tweets[i].machine_hateful = tweets[i].is_hateful;
      continue;
    }
    const double p = finetuned.PredictProba(tweets[i].tokens);
    tweets[i].machine_hateful = p >= 0.5;
    ++machine_total;
    if (tweets[i].machine_hateful != tweets[i].is_hateful) ++machine_wrong;
  }
  report.machine_disagreement =
      machine_total > 0 ? static_cast<double>(machine_wrong) /
                              static_cast<double>(machine_total)
                        : 0.0;
  return report;
}

}  // namespace retina::hatedetect
