// The two-tier labeling pipeline of Section VI-B.
//
// 1. A "gold" subset of tweets is annotated by three simulated annotators
//    (independent noisy views of the generative hate label, majority
//    voted); Krippendorff's alpha of the simulated panel is reported and
//    the noise level is calibrated so alpha lands near the paper's 0.58.
// 2. A Davidson classifier is fine-tuned on gold labels and evaluated on a
//    held-out gold slice (paper: AUC 0.85, macro-F1 0.59).
// 3. A "pre-trained" Davidson variant — lexicon-only features, standing in
//    for a model trained on an out-of-domain corpus whose vocabulary does
//    not transfer — is evaluated on the same slice (paper: 0.79 / 0.48).
// 4. The fine-tuned model machine-annotates every non-gold tweet
//    (Tweet::machine_hateful), which downstream models train on while
//    hate-generation evaluation stays on gold.

#ifndef RETINA_HATEDETECT_ANNOTATION_H_
#define RETINA_HATEDETECT_ANNOTATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "datagen/world.h"

namespace retina::hatedetect {

struct AnnotationOptions {
  /// Fraction of tweets manually annotated (paper: 17,877 / 31,133).
  double gold_fraction = 0.57;
  /// Per-annotator P(label non-hate | truly hateful): hate is hard to
  /// recognize. Together with the false-alarm rate this is calibrated so
  /// the simulated panel's Krippendorff alpha lands near the paper's 0.58
  /// under the corpus' ~4% hate rate (symmetric noise would collapse
  /// alpha under that imbalance).
  double annotator_miss_rate = 0.25;
  /// Per-annotator P(label hateful | truly non-hate).
  double annotator_false_alarm_rate = 0.01;
  /// Gold held-out fraction used to evaluate the detectors.
  double eval_fraction = 0.2;
  uint64_t seed = 11;
};

/// Outcome of the annotation pipeline.
struct AnnotationReport {
  size_t gold_tweets = 0;
  double krippendorff_alpha = 0.0;
  double finetuned_auc = 0.0;
  double finetuned_macro_f1 = 0.0;
  double pretrained_auc = 0.0;
  double pretrained_macro_f1 = 0.0;
  /// Fraction of machine labels that disagree with gold-standard truth.
  double machine_disagreement = 0.0;
};

/// Krippendorff's alpha for binary ratings, one row per item.
double KrippendorffAlpha(const std::vector<std::vector<int>>& ratings);

/// Runs the pipeline, overwriting Tweet::machine_hateful on non-gold
/// tweets in `world`.
Result<AnnotationReport> AnnotateWorld(datagen::SyntheticWorld* world,
                                       const AnnotationOptions& options);

}  // namespace retina::hatedetect

#endif  // RETINA_HATEDETECT_ANNOTATION_H_
