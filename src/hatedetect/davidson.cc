#include "hatedetect/davidson.h"

#include "common/obs.h"
#include "text/tokenizer.h"

namespace retina::hatedetect {

Status DavidsonClassifier::Fit(
    const std::vector<std::vector<std::string>>& docs,
    const std::vector<int>& labels) {
  RETINA_OBS_SPAN("hatedetect.davidson.fit");
  if (docs.empty() || docs.size() != labels.size()) {
    return Status::InvalidArgument("DavidsonClassifier::Fit: bad shapes");
  }
  if (options_.use_tfidf) {
    text::TfIdfOptions topts;
    topts.max_features = options_.max_features;
    topts.min_df = 2;
    topts.rank_by_idf = false;  // Davidson keeps the most frequent n-grams
    tfidf_ = text::TfIdfVectorizer(topts);
    RETINA_RETURN_NOT_OK(tfidf_.Fit(docs));
  }
  Matrix X(docs.size(), Featurize(docs[0]).size());
  for (size_t i = 0; i < docs.size(); ++i) X.SetRow(i, Featurize(docs[i]));
  logreg_ = ml::LogisticRegression(options_.logreg);
  return logreg_.Fit(X, labels);
}

Vec DavidsonClassifier::Featurize(const std::vector<std::string>& doc) const {
  Vec features;
  if (options_.use_tfidf && tfidf_.fitted()) {
    features = tfidf_.Transform(doc);
  }
  if (options_.use_lexicon && lexicon_ != nullptr) {
    // Slur / colloquial hit counts, normalized by length.
    double slurs = 0.0, colloquials = 0.0;
    for (const auto& tok : doc) {
      if (lexicon_->IsSlur(tok)) {
        slurs += 1.0;
      } else if (lexicon_->Contains(tok)) {
        colloquials += 1.0;
      }
    }
    const double len = std::max<size_t>(1, doc.size());
    features.push_back(slurs);
    features.push_back(colloquials);
    features.push_back(slurs / static_cast<double>(len));
    features.push_back(colloquials / static_cast<double>(len));
  }
  features.push_back(static_cast<double>(doc.size()) / 30.0);
  return features;
}

double DavidsonClassifier::PredictProba(
    const std::vector<std::string>& doc) const {
  return logreg_.PredictProba(Featurize(doc));
}

Vec DavidsonClassifier::PredictProbaBatch(
    const std::vector<std::vector<std::string>>& docs) const {
  Vec out(docs.size());
  for (size_t i = 0; i < docs.size(); ++i) out[i] = PredictProba(docs[i]);
  return out;
}

}  // namespace retina::hatedetect
