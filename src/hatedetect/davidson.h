// Davidson-style hate speech classifier (Davidson et al. [9]): tf-idf
// n-gram features + hate-lexicon counts + length statistics feeding an
// L2-regularized logistic regression. This is the best-performing of the
// three detector designs the paper fine-tunes (Section VI-B), used to
// machine-annotate the tweets outside the gold set.

#ifndef RETINA_HATEDETECT_DAVIDSON_H_
#define RETINA_HATEDETECT_DAVIDSON_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/vec.h"
#include "ml/logistic_regression.h"
#include "text/hate_lexicon.h"
#include "text/tfidf.h"

namespace retina::hatedetect {

struct DavidsonOptions {
  /// Tf-idf vocabulary size over unigrams+bigrams. Generous so rare
  /// charged terms survive the frequency ranking (Davidson keeps all
  /// n-grams above a min document frequency).
  size_t max_features = 2000;
  /// Include hate-lexicon count features. Disabling this AND tf-idf
  /// reduces the model to priors; the "pre-trained on another
  /// distribution" variant uses lexicon-only features (the only feature
  /// family that transfers across corpora).
  bool use_tfidf = true;
  bool use_lexicon = true;
  ml::LogisticRegressionOptions logreg = {
      .learning_rate = 0.2,
      .l2 = 1e-4,
      .epochs = 40,
      .batch_size = 32,
      .balanced_class_weight = true,
      .seed = 3,
  };
};

/// \brief Tf-idf + lexicon + LogReg hate classifier.
class DavidsonClassifier {
 public:
  DavidsonClassifier(DavidsonOptions options, const text::HateLexicon* lexicon)
      : options_(options), lexicon_(lexicon) {}

  /// Trains on tokenized documents with binary hate labels.
  Status Fit(const std::vector<std::vector<std::string>>& docs,
             const std::vector<int>& labels);

  /// P(hateful | doc).
  double PredictProba(const std::vector<std::string>& doc) const;

  /// Batch scoring.
  Vec PredictProbaBatch(
      const std::vector<std::vector<std::string>>& docs) const;

 private:
  Vec Featurize(const std::vector<std::string>& doc) const;

  DavidsonOptions options_;
  const text::HateLexicon* lexicon_;
  text::TfIdfVectorizer tfidf_;
  ml::LogisticRegression logreg_;
};

}  // namespace retina::hatedetect

#endif  // RETINA_HATEDETECT_DAVIDSON_H_
