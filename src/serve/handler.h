// Transport-agnostic request handling for the serving daemon.
//
// The Handler interface is what the server dispatches admitted requests
// to; it knows nothing about sockets, frames, or queues. The production
// implementation, RequestHandler, is the serving half of what used to be
// inline in tools/retina_cli.cc's eval command: import the world, load
// the scoring bundle, and stand up one core::ScoringEngine per worker
// (the engine is single-threaded by contract — "one engine per serving
// thread" — while the model and feature extractor are shared read-only;
// the extractor is designed for concurrent scoring threads).
//
// Determinism: a request's scores are a pure function of the bundle and
// the request, independent of which worker handles it, so responses are
// byte-identical to a direct in-process ScoringEngine call on the same
// request (pinned by serve_test and the serve e2e).

#ifndef RETINA_SERVE_HANDLER_H_
#define RETINA_SERVE_HANDLER_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/scoring_engine.h"
#include "datagen/world.h"
#include "serve/protocol.h"

namespace retina::serve {

/// \brief What the admission queue drains into. Implementations must
/// tolerate concurrent calls with distinct `worker` indices; calls with
/// the same index are serialized by the dispatch layer.
class Handler {
 public:
  virtual ~Handler() = default;

  /// Number of independent worker slots (engines) the handler backs.
  virtual size_t num_workers() const = 0;

  /// Answers `req` into `*resp` using worker slot `worker` (< num_workers).
  /// Invalid requests become ResponseCode::kError responses, never
  /// crashes — the daemon must survive any byte stream.
  virtual void HandleScore(size_t worker, const ScoreRequest& req,
                           ScoreResponse* resp) = 0;

  /// Answers a coalesced batch of requests on one worker slot. The
  /// dispatcher only forms batches whose requests all target the same
  /// tweet id, but the contract is stronger: for ANY batch, entry i of
  /// `*resps` must be byte-identical to what HandleScore(worker, *reqs[i])
  /// would have produced — coalescing is a scheduling decision, never a
  /// semantic one. The base implementation simply loops HandleScore, so
  /// transport-only Handler fakes keep working; RequestHandler overrides
  /// it with a fused single-GEMM path for same-tweet batches.
  virtual void HandleScoreBatch(size_t worker,
                                const std::vector<const ScoreRequest*>& reqs,
                                std::vector<ScoreResponse>* resps) {
    resps->resize(reqs.size());
    for (size_t i = 0; i < reqs.size(); ++i) {
      HandleScore(worker, *reqs[i], &(*resps)[i]);
    }
  }

  /// Merges handler-side stats (dataset shape, cache traffic) into a
  /// kStats reply. Called concurrently with HandleScore; implementations
  /// may only expose data that is safe to read concurrently.
  virtual void AppendStats(std::map<std::string, uint64_t>* stats) const = 0;
};

struct RequestHandlerOptions {
  /// Worker engines to create (also the server's scoring concurrency).
  size_t num_workers = 4;
  core::ScoringEngineOptions engine;
};

/// \brief Production handler: a loaded scoring bundle behind per-worker
/// engines.
class RequestHandler : public Handler {
 public:
  /// Imports the world CSV from `data_dir`, loads the model bundle from
  /// `model_dir` (as written by `retina train-retweet --save-model`), and
  /// builds the per-worker engines.
  static Result<std::unique_ptr<RequestHandler>> Open(
      const std::string& data_dir, const std::string& model_dir,
      RequestHandlerOptions options = {});

  /// In-process variant for tests and embedding: serve a model and
  /// extractor the caller owns (both must outlive the handler).
  static std::unique_ptr<RequestHandler> Borrow(
      const core::Retina* model, const core::FeatureExtractor* extractor,
      RequestHandlerOptions options = {});

  size_t num_workers() const override { return engines_.size(); }
  void HandleScore(size_t worker, const ScoreRequest& req,
                   ScoreResponse* resp) override;
  /// Fused path for a same-tweet batch: validates each request
  /// independently (an invalid request errors alone, exactly as
  /// unbatched), concatenates the surviving candidate lists, scores them
  /// through ONE ScoreTweetInto — tweet-side context built once, one
  /// batched GEMM — and slices the scores back out per request. The
  /// engine's batched-forward contract (batched ≡ serial, entry for
  /// entry, at any batch composition) is what makes the fan-out
  /// byte-identical to per-request handling; serve_test pins it. Batches
  /// that mix tweet ids fall back to the per-request loop.
  void HandleScoreBatch(size_t worker,
                        const std::vector<const ScoreRequest*>& reqs,
                        std::vector<ScoreResponse>* resps) override;
  void AppendStats(std::map<std::string, uint64_t>* stats) const override;

  const datagen::SyntheticWorld& world() const;

 private:
  RequestHandler() = default;
  void BuildEngines(const core::Retina* model,
                    const core::FeatureExtractor* extractor,
                    const RequestHandlerOptions& options);

  /// Set only by Open(); the engines alias these.
  std::unique_ptr<datagen::SyntheticWorld> owned_world_;
  std::unique_ptr<core::Retina> owned_model_;
  std::unique_ptr<core::FeatureExtractor> owned_extractor_;
  const core::FeatureExtractor* extractor_ = nullptr;

  /// One engine per worker slot; workers index their own and never share.
  std::vector<std::unique_ptr<core::ScoringEngine>> engines_;
  /// Per-worker request scratch (user-id narrowing buffer).
  std::vector<std::vector<datagen::NodeId>> user_scratch_;
  /// Per-worker fused-batch score buffer (reused across batches).
  std::vector<Vec> batch_scores_scratch_;
};

}  // namespace retina::serve

#endif  // RETINA_SERVE_HANDLER_H_
