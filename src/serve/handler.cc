#include "serve/handler.h"

#include <cassert>
#include <utility>

#include "core/model_store.h"
#include "datagen/serialize.h"

namespace retina::serve {

Result<std::unique_ptr<RequestHandler>> RequestHandler::Open(
    const std::string& data_dir, const std::string& model_dir,
    RequestHandlerOptions options) {
  auto world_result = datagen::ImportWorldCsv(data_dir);
  if (!world_result.ok()) return world_result.status();
  auto world = std::make_unique<datagen::SyntheticWorld>(
      std::move(world_result).ValueOrDie());
  auto bundle_result = core::LoadScoringBundle(model_dir, *world);
  if (!bundle_result.ok()) return bundle_result.status();
  auto bundle = std::move(bundle_result).ValueOrDie();

  std::unique_ptr<RequestHandler> handler(new RequestHandler());
  handler->owned_world_ = std::move(world);
  handler->owned_model_ = std::move(bundle.model);
  handler->owned_extractor_ = std::move(bundle.extractor);
  handler->BuildEngines(handler->owned_model_.get(),
                        handler->owned_extractor_.get(), options);
  return handler;
}

std::unique_ptr<RequestHandler> RequestHandler::Borrow(
    const core::Retina* model, const core::FeatureExtractor* extractor,
    RequestHandlerOptions options) {
  std::unique_ptr<RequestHandler> handler(new RequestHandler());
  handler->BuildEngines(model, extractor, options);
  return handler;
}

void RequestHandler::BuildEngines(const core::Retina* model,
                                  const core::FeatureExtractor* extractor,
                                  const RequestHandlerOptions& options) {
  extractor_ = extractor;
  const size_t n = options.num_workers == 0 ? 1 : options.num_workers;
  engines_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    engines_.push_back(std::make_unique<core::ScoringEngine>(
        model, extractor, options.engine));
  }
  user_scratch_.resize(n);
  batch_scores_scratch_.resize(n);
}

const datagen::SyntheticWorld& RequestHandler::world() const {
  return extractor_->world();
}

namespace {

/// Shared request validation: fills `*resp` with the error response the
/// unbatched path would produce, or collects the narrowed user ids into
/// `*users` and returns true. Both the single and the fused path answer
/// invalid requests through this one function, so an invalid request in a
/// coalesced batch errors byte-identically to unbatched handling.
bool ValidateRequest(const datagen::SyntheticWorld& w, const ScoreRequest& req,
                     std::vector<datagen::NodeId>* users,
                     ScoreResponse* resp) {
  resp->request_id = req.request_id;
  resp->scores.clear();
  resp->message.clear();
  if (req.tweet_id >= w.tweets().size()) {
    resp->code = ResponseCode::kError;
    resp->message = "tweet id " + std::to_string(req.tweet_id) +
                    " out of range (world has " +
                    std::to_string(w.tweets().size()) + " tweets)";
    return false;
  }
  for (uint32_t u : req.users) {
    if (u >= w.NumUsers()) {
      resp->code = ResponseCode::kError;
      resp->message = "user id " + std::to_string(u) +
                      " out of range (world has " +
                      std::to_string(w.NumUsers()) + " users)";
      return false;
    }
    users->push_back(static_cast<datagen::NodeId>(u));
  }
  return true;
}

}  // namespace

void RequestHandler::HandleScore(size_t worker, const ScoreRequest& req,
                                 ScoreResponse* resp) {
  assert(worker < engines_.size());
  const datagen::SyntheticWorld& w = world();
  std::vector<datagen::NodeId>& users = user_scratch_[worker];
  users.clear();
  users.reserve(req.users.size());
  if (!ValidateRequest(w, req, &users, resp)) return;
  engines_[worker]->ScoreTweetInto(w.tweets()[req.tweet_id], users,
                                   &resp->scores);
  resp->code = ResponseCode::kOk;
}

void RequestHandler::HandleScoreBatch(
    size_t worker, const std::vector<const ScoreRequest*>& reqs,
    std::vector<ScoreResponse>* resps) {
  assert(worker < engines_.size());
  resps->resize(reqs.size());
  if (reqs.empty()) return;
  if (reqs.size() == 1) {
    HandleScore(worker, *reqs[0], &(*resps)[0]);
    return;
  }
  // The dispatcher only batches same-tweet requests; anything else takes
  // the per-request path (a custom caller, not a bug in coalescing).
  for (size_t i = 1; i < reqs.size(); ++i) {
    if (reqs[i]->tweet_id != reqs[0]->tweet_id) {
      for (size_t j = 0; j < reqs.size(); ++j) {
        HandleScore(worker, *reqs[j], &(*resps)[j]);
      }
      return;
    }
  }

  // Validate each request on its own — an out-of-range id errors exactly
  // one request — and concatenate the valid candidate lists.
  const datagen::SyntheticWorld& w = world();
  std::vector<datagen::NodeId>& users = user_scratch_[worker];
  users.clear();
  std::vector<std::pair<size_t, size_t>> slices(reqs.size(), {0, 0});
  bool any_valid = false;
  for (size_t i = 0; i < reqs.size(); ++i) {
    const size_t begin = users.size();
    if (ValidateRequest(w, *reqs[i], &users, &(*resps)[i])) {
      slices[i] = {begin, users.size()};
      any_valid = true;
    } else {
      users.resize(begin);  // discard a partially collected invalid list
    }
  }
  if (!any_valid) return;

  // One tweet-side context build, one batched GEMM over every candidate
  // of every coalesced request; the per-entry scores are bit-identical to
  // per-request calls, so slicing them back out IS the unbatched answer.
  Vec& scores = batch_scores_scratch_[worker];
  engines_[worker]->ScoreTweetInto(w.tweets()[reqs[0]->tweet_id], users,
                                   &scores);
  for (size_t i = 0; i < reqs.size(); ++i) {
    ScoreResponse& resp = (*resps)[i];
    if (resp.code == ResponseCode::kError) continue;
    const auto [begin, end] = slices[i];
    resp.scores.assign(scores.begin() + static_cast<ptrdiff_t>(begin),
                       scores.begin() + static_cast<ptrdiff_t>(end));
    resp.code = ResponseCode::kOk;
  }
}

void RequestHandler::AppendStats(std::map<std::string, uint64_t>* stats) const {
  // Only immutable shape data here: the per-engine cache counters are
  // plain (non-atomic) fields owned by their worker threads, so reading
  // them concurrently with HandleScore would race. The server's own
  // atomics carry the live traffic counters.
  const datagen::SyntheticWorld& w = world();
  (*stats)["handler.num_tweets"] = w.tweets().size();
  (*stats)["handler.num_users"] = w.NumUsers();
  (*stats)["handler.num_workers"] = engines_.size();
}

}  // namespace retina::serve
