#include "serve/handler.h"

#include <cassert>
#include <utility>

#include "core/model_store.h"
#include "datagen/serialize.h"

namespace retina::serve {

Result<std::unique_ptr<RequestHandler>> RequestHandler::Open(
    const std::string& data_dir, const std::string& model_dir,
    RequestHandlerOptions options) {
  auto world_result = datagen::ImportWorldCsv(data_dir);
  if (!world_result.ok()) return world_result.status();
  auto world = std::make_unique<datagen::SyntheticWorld>(
      std::move(world_result).ValueOrDie());
  auto bundle_result = core::LoadScoringBundle(model_dir, *world);
  if (!bundle_result.ok()) return bundle_result.status();
  auto bundle = std::move(bundle_result).ValueOrDie();

  std::unique_ptr<RequestHandler> handler(new RequestHandler());
  handler->owned_world_ = std::move(world);
  handler->owned_model_ = std::move(bundle.model);
  handler->owned_extractor_ = std::move(bundle.extractor);
  handler->BuildEngines(handler->owned_model_.get(),
                        handler->owned_extractor_.get(), options);
  return handler;
}

std::unique_ptr<RequestHandler> RequestHandler::Borrow(
    const core::Retina* model, const core::FeatureExtractor* extractor,
    RequestHandlerOptions options) {
  std::unique_ptr<RequestHandler> handler(new RequestHandler());
  handler->BuildEngines(model, extractor, options);
  return handler;
}

void RequestHandler::BuildEngines(const core::Retina* model,
                                  const core::FeatureExtractor* extractor,
                                  const RequestHandlerOptions& options) {
  extractor_ = extractor;
  const size_t n = options.num_workers == 0 ? 1 : options.num_workers;
  engines_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    engines_.push_back(std::make_unique<core::ScoringEngine>(
        model, extractor, options.engine));
  }
  user_scratch_.resize(n);
}

const datagen::SyntheticWorld& RequestHandler::world() const {
  return extractor_->world();
}

void RequestHandler::HandleScore(size_t worker, const ScoreRequest& req,
                                 ScoreResponse* resp) {
  assert(worker < engines_.size());
  resp->request_id = req.request_id;
  resp->scores.clear();
  resp->message.clear();

  const datagen::SyntheticWorld& w = world();
  if (req.tweet_id >= w.tweets().size()) {
    resp->code = ResponseCode::kError;
    resp->message = "tweet id " + std::to_string(req.tweet_id) +
                    " out of range (world has " +
                    std::to_string(w.tweets().size()) + " tweets)";
    return;
  }
  std::vector<datagen::NodeId>& users = user_scratch_[worker];
  users.clear();
  users.reserve(req.users.size());
  for (uint32_t u : req.users) {
    if (u >= w.NumUsers()) {
      resp->code = ResponseCode::kError;
      resp->message = "user id " + std::to_string(u) +
                      " out of range (world has " +
                      std::to_string(w.NumUsers()) + " users)";
      return;
    }
    users.push_back(static_cast<datagen::NodeId>(u));
  }
  engines_[worker]->ScoreTweetInto(w.tweets()[req.tweet_id], users,
                                   &resp->scores);
  resp->code = ResponseCode::kOk;
}

void RequestHandler::AppendStats(std::map<std::string, uint64_t>* stats) const {
  // Only immutable shape data here: the per-engine cache counters are
  // plain (non-atomic) fields owned by their worker threads, so reading
  // them concurrently with HandleScore would race. The server's own
  // atomics carry the live traffic counters.
  const datagen::SyntheticWorld& w = world();
  (*stats)["handler.num_tweets"] = w.tweets().size();
  (*stats)["handler.num_users"] = w.NumUsers();
  (*stats)["handler.num_workers"] = engines_.size();
}

}  // namespace retina::serve
