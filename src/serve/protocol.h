// retina::serve wire protocol — versioned, length-prefixed binary frames
// over a stream socket.
//
// Framing: every message travels as
//
//   u32  payload_len   (little-endian, 0 < len <= kMaxFramePayloadBytes)
//   u8[payload_len]    payload
//
// and every payload begins with a fixed header
//
//   u32  magic         kProtocolMagic ("RETP" on the wire)
//   u16  version       kProtocolVersion
//   u8   type          MessageType
//   u8   reserved      must be zero
//
// followed by the body of the given type (all integers little-endian):
//
//   kScoreRequest:   u64 request_id | u64 tweet_id | u32 n | n x u32 user |
//                      u64 trace_id | u64 span_id     (v2; v1 ends at the
//                      user list — decoders accept both, zero = no trace)
//   kScoreResponse:  u64 request_id | u8 code |
//                      code==kOk:  u32 n | n x u64 score-bit-pattern
//                      otherwise:  u32 msg_len | msg bytes
//   kStatsRequest:   u64 request_id
//   kStatsResponse:  u64 request_id | u32 n | n x (u32 key_len | key |
//                      u64 value), keys unique and sorted
//   kMetricsRequest: u64 request_id
//   kMetricsResponse:u64 request_id |
//                      u32 n | n x (u32 key_len | key | u64 value)
//                        counters
//                      u32 n | n x (u32 key_len | key | u64 i64-bits)
//                        gauges (two's-complement int64 in a u64)
//                      u32 n | n x (u32 key_len | key |
//                        u64 count | u64 sum | u64 p50 | u64 p95 | u64 p99)
//                        cumulative histograms
//                      u32 n | n x (u32 key_len | key | u64 ticks |
//                        u64 slots | u64 count | u64 sum | u64 p50 |
//                        u64 p95 | u64 p99)
//                        windowed histograms
//                      keys unique and sorted within each section
//
// Version history: v1 framed kScoreRequest..kStatsResponse; v2 added the
// optional trace tail on kScoreRequest and the kMetrics pair. Decoders
// accept every version in [kMinProtocolVersion, kProtocolVersion];
// encoders always emit kProtocolVersion.
//
// Scores cross the wire as IEEE-754 f64 bit patterns in a u64, so a
// client reassembles exactly the doubles the engine produced — the serve
// e2e pins byte-identity against a direct in-process ScoringEngine call.
//
// Corruption discipline matches io::Checkpoint: every malformed input —
// bad magic, unknown version or type, nonzero reserved byte, oversized
// or zero frame length, truncated body, trailing bytes — decodes to a
// Status error, never to UB or a silently wrong message. Encoders are
// infallible; only decoding and socket I/O can fail.

#ifndef RETINA_SERVE_PROTOCOL_H_
#define RETINA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/obs.h"
#include "common/status.h"
#include "common/vec.h"

namespace retina::serve {

inline constexpr uint32_t kProtocolMagic = 0x50544552;  // "RETP" in LE bytes
inline constexpr uint16_t kProtocolVersion = 2;
/// Oldest version decoders still accept (v1 = no score-request trace tail,
/// no metrics messages).
inline constexpr uint16_t kMinProtocolVersion = 1;
/// Upper bound on a frame payload; a length prefix above this is treated
/// as stream corruption rather than an allocation request.
inline constexpr uint32_t kMaxFramePayloadBytes = 16u << 20;
/// Bytes of the fixed payload header (magic, version, type, reserved).
inline constexpr size_t kPayloadHeaderBytes = 8;

enum class MessageType : uint8_t {
  kScoreRequest = 1,
  kScoreResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kMetricsRequest = 5,
  kMetricsResponse = 6,
};

enum class ResponseCode : uint8_t {
  kOk = 0,     ///< scores present
  kShed = 1,   ///< admission queue full; retry later
  kError = 2,  ///< request invalid (message tells why)
};

/// Score `users` as retweet candidates of `tweet_id`. `request_id` is an
/// opaque client token echoed in the response. `trace_id`/`span_id` carry
/// the client's trace context so daemon spans parent under the client's
/// trace; zero means absent (v1 clients, or tracing off).
struct ScoreRequest {
  uint64_t request_id = 0;
  uint64_t tweet_id = 0;
  std::vector<uint32_t> users;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

struct ScoreResponse {
  uint64_t request_id = 0;
  ResponseCode code = ResponseCode::kOk;
  Vec scores;           ///< meaningful iff code == kOk
  std::string message;  ///< meaningful iff code != kOk
};

struct StatsRequest {
  uint64_t request_id = 0;
};

/// Server-side introspection: dataset shape (num_tweets, num_users) so a
/// client can build valid requests without loading the world, plus live
/// admission/drain counters for the load driver's shed and queue-depth
/// columns.
struct StatsResponse {
  uint64_t request_id = 0;
  std::map<std::string, uint64_t> stats;
};

struct MetricsRequest {
  uint64_t request_id = 0;
};

/// Typed registry snapshot for live monitoring: obs counters/gauges (with
/// the server's own admission stats merged in, so the view stays useful
/// when obs is disabled), cumulative histogram quantiles, and windowed
/// quantiles over the daemon's recent ticks.
struct MetricsResponse {
  uint64_t request_id = 0;
  obs::RegistrySnapshot snapshot;
};

/// Validates the payload header and returns the message type.
Result<MessageType> PeekMessageType(std::string_view payload);

std::string EncodeScoreRequest(const ScoreRequest& req);
std::string EncodeScoreResponse(const ScoreResponse& resp);
std::string EncodeStatsRequest(const StatsRequest& req);
std::string EncodeStatsResponse(const StatsResponse& resp);
std::string EncodeMetricsRequest(const MetricsRequest& req);
std::string EncodeMetricsResponse(const MetricsResponse& resp);

Status DecodeScoreRequest(std::string_view payload, ScoreRequest* out);
Status DecodeScoreResponse(std::string_view payload, ScoreResponse* out);
Status DecodeStatsRequest(std::string_view payload, StatsRequest* out);
Status DecodeStatsResponse(std::string_view payload, StatsResponse* out);
Status DecodeMetricsRequest(std::string_view payload, MetricsRequest* out);
Status DecodeMetricsResponse(std::string_view payload, MetricsResponse* out);

/// Writes one length-prefixed frame. Handles partial writes and EINTR;
/// never raises SIGPIPE (a closed peer is an IOError). `payload` must be
/// a complete encoded message.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one length-prefixed frame into `*payload`. A clean EOF at a
/// frame boundary sets `*eof` and returns OK with an empty payload; EOF
/// mid-frame, a zero or oversized length prefix, or any socket error is
/// a Status error.
Status ReadFrame(int fd, std::string* payload, bool* eof);

}  // namespace retina::serve

#endif  // RETINA_SERVE_PROTOCOL_H_
