// retina_serve — the serving daemon.
//
//   retina_serve --data DIR --model DIR [--socket PATH] [--listen HOST:PORT]
//                [--workers N] [--queue-capacity N]
//                [--coalesce-max-batch N] [--coalesce-linger POLLS]
//                [--metrics-out FILE] [--trace-out FILE] [--prom-out FILE]
//                [--metrics-tick N] [--log-level LEVEL] [--simd BACKEND]
//
// Loads the world and the scoring bundle once, then serves score
// requests over the Unix-domain socket and/or a TCP listener (same
// frame protocol on both; at least one transport is required) until
// SIGTERM/SIGINT, at which point it drains gracefully (stop accepting,
// answer everything admitted) and writes the observability exports
// before exiting 0. With --listen HOST:0 the kernel picks the port;
// the bound port is printed on the "serving on" stdout line so
// harnesses can parse it.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/run_export.h"
#include "common/simd.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "serve/handler.h"
#include "serve/server.h"

namespace {

using namespace retina;

struct Args {
  std::string data;
  std::string model;
  std::string socket;
  std::string listen;
  std::string metrics_out;
  std::string trace_out;
  std::string prom_out;
  std::string log_level;
  std::string simd;
  size_t workers = 4;
  size_t queue_capacity = 256;
  size_t coalesce_max_batch = 16;
  size_t coalesce_linger = 2;
  size_t metrics_tick = 64;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: retina_serve --data DIR --model DIR"
      " (--socket PATH | --listen HOST:PORT)\n"
      "  --data DIR            world CSV directory (retina generate)\n"
      "  --model DIR           scoring bundle (train-retweet --save-model)\n"
      "  --socket PATH         Unix-domain socket to listen on\n"
      "  --listen HOST:PORT    TCP listen address (port 0 = kernel picks;\n"
      "                        the bound port is printed on startup).\n"
      "                        May be combined with --socket; at least one\n"
      "                        transport is required\n"
      "  --workers N           scoring workers / engines (default 4)\n"
      "  --queue-capacity N    admission queue capacity; requests beyond\n"
      "                        it are shed with a kShed reply (default 256)\n"
      "  --coalesce-max-batch N  max same-tweet requests fused into one\n"
      "                        batched handler call; 1 disables coalescing\n"
      "                        (default 16)\n"
      "  --coalesce-linger POLLS  extra non-blocking queue polls spent\n"
      "                        topping up a partial batch (default 2)\n"
      "  --metrics-out FILE    dump the obs registry as JSON on drain\n"
      "  --trace-out FILE      record a timeline trace for the whole run\n"
      "  --prom-out FILE       refresh a Prometheus text exposition of the\n"
      "                        registry on the metrics cadence (atomic\n"
      "                        rename; scrape-safe while serving)\n"
      "  --metrics-tick N      handled requests per metrics cadence tick:\n"
      "                        window rotation, process-gauge sampling,\n"
      "                        prom refresh (default 64; 0 disables)\n"
      "  --log-level LEVEL     stderr log threshold: debug|info|warn|error\n"
      "  --simd BACKEND        kernel dispatch: auto|avx2|neon|scalar\n");
  return 2;
}

/// One-line Status rejection for unknown flags — same contract as the CLI.
int UnknownFlag(const std::string& arg) {
  std::fprintf(stderr, "%s\n",
               Status::InvalidArgument("unknown flag '" + arg +
                                       "' (run 'retina_serve' for usage)")
                   .ToString()
                   .c_str());
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args, int* rc) {
  *rc = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    auto take = [&](const char* name, std::string* out) -> bool {
      if (arg == name) {
        const char* v = next();
        if (v == nullptr) return false;
        *out = v;
        return true;
      }
      const std::string prefix = std::string(name) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string value;
    if (take("--data", &args->data) || take("--model", &args->model) ||
        take("--socket", &args->socket) || take("--listen", &args->listen) ||
        take("--metrics-out", &args->metrics_out) ||
        take("--trace-out", &args->trace_out) ||
        take("--prom-out", &args->prom_out) ||
        take("--log-level", &args->log_level) ||
        take("--simd", &args->simd)) {
      continue;
    }
    if (take("--metrics-tick", &value)) {
      args->metrics_tick = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--workers", &value)) {
      args->workers = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--queue-capacity", &value)) {
      args->queue_capacity = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--coalesce-max-batch", &value)) {
      args->coalesce_max_batch =
          static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    if (take("--coalesce-linger", &value)) {
      args->coalesce_linger = static_cast<size_t>(std::atoll(value.c_str()));
      continue;
    }
    *rc = UnknownFlag(arg);
    return false;
  }
  if (args->data.empty() || args->model.empty() ||
      (args->socket.empty() && args->listen.empty())) {
    *rc = Usage();
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  int rc = 0;
  if (!ParseArgs(argc, argv, &args, &rc)) return rc;
  if (!args.log_level.empty()) {
    retina::LogLevel level;
    if (!retina::ParseLogLevel(args.log_level, &level)) {
      std::fprintf(stderr, "bad --log-level: %s (want debug|info|warn|error)\n",
                   args.log_level.c_str());
      return 2;
    }
    retina::SetLogLevel(level);
  }
  if (!args.simd.empty()) {
    simd::Backend backend;
    if (!simd::ParseBackend(args.simd, &backend)) {
      std::fprintf(stderr, "bad --simd: %s (want auto|avx2|neon|scalar)\n",
                   args.simd.c_str());
      return 2;
    }
    const Status forced = simd::ForceBackend(backend);
    if (!forced.ok()) {
      std::fprintf(stderr, "--simd=%s: %s\n", args.simd.c_str(),
                   forced.ToString().c_str());
      return 2;
    }
  }
  if (!args.trace_out.empty()) obs::StartTracing();

  Stopwatch load_timer;
  serve::RequestHandlerOptions hopts;
  hopts.num_workers = args.workers == 0 ? 1 : args.workers;
  auto handler_result =
      serve::RequestHandler::Open(args.data, args.model, hopts);
  if (!handler_result.ok()) {
    std::fprintf(stderr, "%s\n",
                 handler_result.status().ToString().c_str());
    return 1;
  }
  auto handler = std::move(handler_result).ValueOrDie();
  std::printf("loaded %s over %s (%.1fs): %zu tweets, %zu users\n",
              args.model.c_str(), args.data.c_str(),
              load_timer.ElapsedSeconds(), handler->world().tweets().size(),
              handler->world().NumUsers());

  serve::ServerOptions sopts;
  sopts.socket_path = args.socket;
  sopts.listen_address = args.listen;
  sopts.queue_capacity = args.queue_capacity;
  sopts.coalesce_max_batch = args.coalesce_max_batch;
  sopts.coalesce_linger_polls = args.coalesce_linger;
  sopts.install_signal_handler = true;
  sopts.metrics_tick_requests = args.metrics_tick;
  sopts.prom_out = args.prom_out;
  serve::Server server(handler.get(), sopts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::string transports;
  if (!args.socket.empty()) transports = args.socket;
  if (!args.listen.empty()) {
    if (!transports.empty()) transports += " + ";
    // Print the bound port, not the requested one: --listen HOST:0 asks
    // the kernel, and harnesses parse this line to find the port.
    transports += "tcp port " + std::to_string(server.tcp_port());
  }
  std::printf("serving on %s (%zu workers, queue capacity %zu); "
              "SIGTERM drains\n",
              transports.c_str(), handler->num_workers(),
              args.queue_capacity == 0 ? size_t{1} : args.queue_capacity);
  std::fflush(stdout);

  st = server.Wait();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const Status metrics_st = obs::ExportMetricsJson(args.metrics_out);
  if (!metrics_st.ok()) {
    std::fprintf(stderr, "%s\n", metrics_st.ToString().c_str());
    return 1;
  }
  const Status trace_st = obs::ExportChromeTrace(args.trace_out);
  if (!trace_st.ok()) {
    std::fprintf(stderr, "%s\n", trace_st.ToString().c_str());
    return 1;
  }
  return 0;
}
