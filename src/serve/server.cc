#include "serve/server.h"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace retina::serve {

namespace {

/// Poll granularity of the accept and reader loops: the latency bound on
/// noticing a drain request while idle.
constexpr int kPollMs = 50;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Signal-to-drain bridge. The handler only flips a flag (the async-signal
// -safe subset); the accept loop promotes it into RequestShutdown().
volatile sig_atomic_t g_drain_signal = 0;

void DrainSignalHandler(int /*signum*/) { g_drain_signal = 1; }

void InstallDrainSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::ObsHooks Server::ObsHooks::Resolve() {
  obs::Registry& reg = obs::Registry::Global();
  ObsHooks h;
  h.connections = reg.GetCounter("serve.connections");
  h.requests = reg.GetCounter("serve.requests");
  h.responses = reg.GetCounter("serve.responses");
  h.shed = reg.GetCounter("serve.shed");
  h.errors = reg.GetCounter("serve.errors");
  h.protocol_errors = reg.GetCounter("serve.protocol_errors");
  h.queue_depth_peak = reg.GetGauge("serve.queue.depth_peak");
  h.queue_capacity = reg.GetGauge("serve.queue.capacity");
  h.workers = reg.GetGauge("serve.workers");
  h.queue_wait_ns = reg.GetHistogram("serve.queue_wait_ns");
  h.handle_ns = reg.GetHistogram("serve.handle_ns");
  return h;
}

Server::Server(Handler* handler, ServerOptions options)
    : handler_(handler),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      hooks_(ObsHooks::Resolve()) {}

Server::~Server() {
  if (started_) {
    RequestShutdown();
    Wait();
  }
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.socket_path.empty()) {
    return Status::InvalidArgument("ServerOptions.socket_path is required");
  }
  struct sockaddr_un addr;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());
  ::unlink(options_.socket_path.c_str());  // replace any stale socket file
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError("bind " + options_.socket_path +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return st;
  }
  listen_fd_ = fd;

  if (options_.install_signal_handler) {
    g_drain_signal = 0;
    InstallDrainSignalHandler();
  }
  hooks_.queue_capacity->Set(static_cast<int64_t>(queue_.capacity()));
  hooks_.workers->Set(static_cast<int64_t>(handler_->num_workers()));

  pool_ = std::make_unique<par::ThreadPool>(
      handler_->num_workers() == 0 ? 1 : handler_->num_workers());
  started_ = true;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  dispatch_thread_ = std::thread(&Server::DispatchLoop, this);
  RETINA_LOG(Info) << "serve: listening on " << options_.socket_path << " ("
                   << handler_->num_workers() << " workers, queue capacity "
                   << queue_.capacity() << ")";
  return Status::OK();
}

void Server::RequestShutdown() {
  draining_.store(true, std::memory_order_release);
}

Status Server::Wait() {
  if (!started_) return Status::FailedPrecondition("server not started");
  accept_thread_.join();
  // The accept thread only exits once draining_ is set, and it joins no
  // new readers after that; reader threads exit on the same flag.
  for (std::thread& t : reader_threads_) t.join();
  // Nothing can enqueue anymore: close the queue so workers drain the
  // admitted backlog and exit.
  queue_.Close();
  dispatch_thread_.join();
  started_ = false;
  RETINA_LOG(Info) << "serve: drained (" << responses_.load() << " responses, "
                   << shed_.load() << " shed)";
  return Status::OK();
}

void Server::AcceptLoop() {
  while (true) {
    // The signal flag is only authoritative for the server that installed
    // the handler — embedded servers (tests) drain via RequestShutdown.
    if (options_.install_signal_handler && g_drain_signal != 0) {
      RequestShutdown();
    }
    if (draining()) break;
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0) continue;  // timeout, EINTR: re-check the drain flags
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    hooks_.connections->Add();
    auto conn = std::make_shared<Conn>(cfd);
    std::lock_guard<std::mutex> lock(readers_mu_);
    reader_threads_.emplace_back(&Server::ReaderLoop, this, std::move(conn));
  }
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
}

void Server::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::string payload;
  while (!draining()) {
    struct pollfd pfd;
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0) continue;
    bool eof = false;
    const Status st = ReadFrame(conn->fd, &payload, &eof);
    if (!st.ok()) {
      // The byte stream is out of sync; nothing after this point can be
      // framed reliably, so the only safe move is to drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.protocol_errors->Add();
      RETINA_LOG(Warning) << "serve: " << st.ToString();
      break;
    }
    if (eof) break;
    if (!HandleFrame(conn, payload)) break;
  }
  ::shutdown(conn->fd, SHUT_RD);
  // The Conn (and its fd) stays alive until the last queued WorkItem's
  // response has been written; the shared_ptr does the bookkeeping.
}

bool Server::HandleFrame(const std::shared_ptr<Conn>& conn,
                         const std::string& payload) {
  const Result<MessageType> type = PeekMessageType(payload);
  if (!type.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    hooks_.protocol_errors->Add();
    RETINA_LOG(Warning) << "serve: " << type.status().ToString();
    return false;
  }
  switch (type.ValueOrDie()) {
    case MessageType::kScoreRequest: {
      ScoreRequest req;
      const Status st = DecodeScoreRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        hooks_.protocol_errors->Add();
        RETINA_LOG(Warning) << "serve: " << st.ToString();
        return false;
      }
      const uint64_t request_id = req.request_id;
      WorkItem item;
      item.conn = conn;
      item.req = std::move(req);
      // Thread hand-off: capture the enqueuer's ambient trace context for
      // the worker to adopt — the ThreadPool::Run invariant, applied to
      // the admission queue.
      item.ctx = obs::CurrentTraceContext();
      item.enqueue_ns = NowNs();
      if (!queue_.TryPush(std::move(item))) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        hooks_.shed->Add();
        ScoreResponse resp;
        resp.request_id = request_id;
        resp.code = ResponseCode::kShed;
        resp.message = "admission queue full";
        WriteResponse(conn.get(), resp);
        return true;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      hooks_.requests->Add();
      const uint64_t depth = queue_.size();
      uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
      while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                                 peak, depth, std::memory_order_relaxed)) {
      }
      hooks_.queue_depth_peak->UpdateMax(static_cast<int64_t>(depth));
      return true;
    }
    case MessageType::kStatsRequest: {
      StatsRequest req;
      const Status st = DecodeStatsRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        hooks_.protocol_errors->Add();
        return false;
      }
      StatsResponse resp;
      resp.request_id = req.request_id;
      SnapshotStats(&resp.stats);
      handler_->AppendStats(&resp.stats);
      const std::string encoded = EncodeStatsResponse(resp);
      std::lock_guard<std::mutex> lock(conn->write_mu);
      const Status wst = WriteFrame(conn->fd, encoded);
      if (!wst.ok()) write_errors_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    default:
      // A client pushing response-typed frames at the server is as
      // out-of-contract as garbage bytes.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.protocol_errors->Add();
      return false;
  }
}

void Server::DispatchLoop() {
  const size_t n = pool_->num_threads();
  pool_->Run(n, [this](size_t w) { WorkerLoop(w); });
}

void Server::WorkerLoop(size_t worker) {
  WorkItem item;
  while (queue_.Pop(&item)) {
    const uint64_t start_ns = NowNs();
    if (start_ns > item.enqueue_ns) {
      hooks_.queue_wait_ns->Record(start_ns - item.enqueue_ns);
    }
    // Adopt the enqueuer's trace context for the duration of the request
    // (and restore our own after), so timeline events on this worker nest
    // under whatever the reader was tracing — the standing invariant for
    // cross-thread hand-offs.
    const obs::TraceContext saved = obs::CurrentTraceContext();
    obs::SetCurrentTraceContext(item.ctx);
    ScoreResponse resp;
    {
      obs::TraceRequestScope request_scope;
      RETINA_OBS_SPAN("serve.handle");
      handler_->HandleScore(worker, item.req, &resp);
    }
    obs::SetCurrentTraceContext(saved);
    if (resp.code == ResponseCode::kError) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.errors->Add();
    }
    WriteResponse(item.conn.get(), resp);
    responses_.fetch_add(1, std::memory_order_relaxed);
    hooks_.responses->Add();
    hooks_.handle_ns->Record(NowNs() - start_ns);
    item = WorkItem();  // release the Conn reference promptly
  }
}

void Server::WriteResponse(Conn* conn, const ScoreResponse& resp) {
  const std::string encoded = EncodeScoreResponse(resp);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  const Status st = WriteFrame(conn->fd, encoded);
  if (!st.ok()) {
    // The client went away before its answer; all we owe the rest of the
    // system is the count.
    write_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SnapshotStats(std::map<std::string, uint64_t>* stats) const {
  (*stats)["serve.connections"] = connections_.load(std::memory_order_relaxed);
  (*stats)["serve.requests"] = requests_.load(std::memory_order_relaxed);
  (*stats)["serve.responses"] = responses_.load(std::memory_order_relaxed);
  (*stats)["serve.shed"] = shed_.load(std::memory_order_relaxed);
  (*stats)["serve.errors"] = errors_.load(std::memory_order_relaxed);
  (*stats)["serve.protocol_errors"] =
      protocol_errors_.load(std::memory_order_relaxed);
  (*stats)["serve.write_errors"] =
      write_errors_.load(std::memory_order_relaxed);
  (*stats)["serve.queue_depth_peak"] =
      queue_depth_peak_.load(std::memory_order_relaxed);
  (*stats)["serve.queue_capacity"] = queue_.capacity();
  (*stats)["serve.workers"] = handler_->num_workers();
  (*stats)["serve.draining"] = draining() ? 1 : 0;
}

}  // namespace retina::serve
