#include "serve/server.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/run_export.h"

namespace retina::serve {

namespace {

/// Poll granularity of the accept and reader loops: the latency bound on
/// noticing a drain request while idle.
constexpr int kPollMs = 50;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Signal-to-drain bridge. The handler only flips a flag (the async-signal
// -safe subset); the accept loop promotes it into RequestShutdown().
volatile sig_atomic_t g_drain_signal = 0;

void DrainSignalHandler(int /*signum*/) { g_drain_signal = 1; }

void InstallDrainSignalHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = DrainSignalHandler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

}  // namespace

Server::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

Server::ObsHooks Server::ObsHooks::Resolve() {
  obs::Registry& reg = obs::Registry::Global();
  ObsHooks h;
  h.connections = reg.GetCounter("serve.connections");
  h.requests = reg.GetCounter("serve.requests");
  h.responses = reg.GetCounter("serve.responses");
  h.shed = reg.GetCounter("serve.shed");
  h.errors = reg.GetCounter("serve.errors");
  h.protocol_errors = reg.GetCounter("serve.protocol_errors");
  h.coalesce_batches = reg.GetCounter("serve.coalesce.batches");
  h.coalesce_batched_requests =
      reg.GetCounter("serve.coalesce.batched_requests");
  h.queue_depth_peak = reg.GetGauge("serve.queue.depth_peak");
  h.queue_capacity = reg.GetGauge("serve.queue.capacity");
  h.workers = reg.GetGauge("serve.workers");
  h.coalesce_max_batch = reg.GetGauge("serve.coalesce.max_batch");
  h.queue_wait_ns = reg.GetWindowedHistogram("serve.queue_wait_ns");
  h.handle_ns = reg.GetWindowedHistogram("serve.handle_ns");
  return h;
}

Server::Server(Handler* handler, ServerOptions options)
    : handler_(handler),
      options_(std::move(options)),
      queue_(options_.queue_capacity),
      hooks_(ObsHooks::Resolve()) {}

Server::~Server() {
  if (started_) {
    RequestShutdown();
    Wait();
  }
}

Status Server::StartUnixListener() {
  struct sockaddr_un addr;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options_.socket_path);
  }
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size());

  // Stale-socket recovery: a SIGKILL'd daemon never reaches the drain
  // unlink, so the path may hold a dead socket inode. Probe it with a
  // connect before touching anything — if a live daemon answers, refuse
  // to steal its socket; only a probe that nobody answers licenses the
  // unlink.
  {
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int rc = ::connect(
          probe, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr));
      const int probe_errno = errno;
      ::close(probe);
      if (rc == 0) {
        return Status::FailedPrecondition(
            "another server is live on " + options_.socket_path +
            " (connect probe succeeded); refusing to steal its socket");
      }
      if (probe_errno != ENOENT) {
        RETINA_LOG(Warning) << "serve: removing stale socket file "
                            << options_.socket_path << " (probe: "
                            << std::strerror(probe_errno) << ")";
        ::unlink(options_.socket_path.c_str());
      }
    }
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status st = Status::IOError("bind " + options_.socket_path +
                                      " failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) < 0) {
    const Status st =
        Status::IOError(std::string("listen failed: ") + std::strerror(errno));
    ::close(fd);
    ::unlink(options_.socket_path.c_str());
    return st;
  }
  listen_fd_ = fd;
  return Status::OK();
}

Status Server::StartTcpListener() {
  const std::string& spec = options_.listen_address;
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument(
        "listen_address must be host:port, got '" + spec + "'");
  }
  std::string host = spec.substr(0, colon);
  const std::string port = spec.substr(colon + 1);
  if (host.empty()) host = "0.0.0.0";
  if (port.empty()) {
    return Status::InvalidArgument("listen_address has no port: '" + spec +
                                   "'");
  }

  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::InvalidArgument("cannot resolve listen address '" + spec +
                                   "': " + ::gai_strerror(gai));
  }
  Status st = Status::IOError("no usable address for '" + spec + "'");
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    // SO_REUSEADDR: a drained daemon's TIME_WAIT sockets must not block
    // the next run from binding the same port.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) < 0 || ::listen(fd, 64) < 0) {
      st = Status::IOError("bind/listen " + spec +
                           " failed: " + std::strerror(errno));
      ::close(fd);
      continue;
    }
    // Recover the actual port (listen_address may have asked for :0).
    struct sockaddr_storage bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        tcp_port_ = ntohs(
            reinterpret_cast<struct sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        tcp_port_ = ntohs(
            reinterpret_cast<struct sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    tcp_listen_fd_ = fd;
    st = Status::OK();
    break;
  }
  ::freeaddrinfo(res);
  return st;
}

Status Server::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.socket_path.empty() && options_.listen_address.empty()) {
    return Status::InvalidArgument(
        "ServerOptions needs a socket_path and/or a listen_address");
  }
  if (!options_.socket_path.empty()) {
    RETINA_RETURN_NOT_OK(StartUnixListener());
  }
  if (!options_.listen_address.empty()) {
    const Status st = StartTcpListener();
    if (!st.ok()) {
      if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        ::unlink(options_.socket_path.c_str());
      }
      return st;
    }
  }

  if (options_.install_signal_handler) {
    g_drain_signal = 0;
    InstallDrainSignalHandler();
  }
  hooks_.queue_capacity->Set(static_cast<int64_t>(queue_.capacity()));
  hooks_.workers->Set(static_cast<int64_t>(handler_->num_workers()));
  hooks_.coalesce_max_batch->Set(
      static_cast<int64_t>(std::max<size_t>(1, options_.coalesce_max_batch)));

  pool_ = std::make_unique<par::ThreadPool>(
      handler_->num_workers() == 0 ? 1 : handler_->num_workers());
  started_ = true;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  dispatch_thread_ = std::thread(&Server::DispatchLoop, this);
  std::string where;
  if (listen_fd_ >= 0) where += options_.socket_path;
  if (tcp_listen_fd_ >= 0) {
    if (!where.empty()) where += " + ";
    where += "tcp port " + std::to_string(tcp_port_);
  }
  RETINA_LOG(Info) << "serve: listening on " << where << " ("
                   << handler_->num_workers() << " workers, queue capacity "
                   << queue_.capacity() << ", coalesce max batch "
                   << std::max<size_t>(1, options_.coalesce_max_batch) << ")";
  return Status::OK();
}

void Server::RequestShutdown() {
  draining_.store(true, std::memory_order_release);
}

Status Server::Wait() {
  if (!started_) return Status::FailedPrecondition("server not started");
  accept_thread_.join();
  // The accept thread only exits once draining_ is set, and it joins no
  // new readers after that; reader threads exit on the same flag.
  for (std::thread& t : reader_threads_) t.join();
  // Nothing can enqueue anymore: close the queue so workers drain the
  // admitted backlog and exit.
  queue_.Close();
  dispatch_thread_.join();
  started_ = false;
  if (!options_.prom_out.empty()) {
    // Final refresh so the published exposition covers the whole run even
    // when the last requests never crossed a cadence boundary.
    if (obs::Enabled()) obs::Registry::Global().SampleProcessGauges();
    const Status st = obs::ExportPrometheus(options_.prom_out);
    if (!st.ok()) {
      RETINA_LOG(Warning) << "serve: prometheus export failed: "
                          << st.ToString();
    }
  }
  RETINA_LOG(Info) << "serve: drained (" << responses_.load() << " responses, "
                   << shed_.load() << " shed)";
  return Status::OK();
}

void Server::AcceptLoop() {
  while (true) {
    // The signal flag is only authoritative for the server that installed
    // the handler — embedded servers (tests) drain via RequestShutdown.
    if (options_.install_signal_handler && g_drain_signal != 0) {
      RequestShutdown();
    }
    if (draining()) break;
    struct pollfd pfds[2];
    nfds_t nfds = 0;
    if (listen_fd_ >= 0) {
      pfds[nfds].fd = listen_fd_;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    if (tcp_listen_fd_ >= 0) {
      pfds[nfds].fd = tcp_listen_fd_;
      pfds[nfds].events = POLLIN;
      pfds[nfds].revents = 0;
      ++nfds;
    }
    const int pr = ::poll(pfds, nfds, kPollMs);
    if (pr <= 0) continue;  // timeout, EINTR: re-check the drain flags
    for (nfds_t i = 0; i < nfds; ++i) {
      if ((pfds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept(pfds[i].fd, nullptr, nullptr);
      if (cfd < 0) continue;
      if (pfds[i].fd == tcp_listen_fd_) {
        // Request/response over loopback is exactly the pattern Nagle +
        // delayed-ACK penalizes; the frames are already full messages.
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      }
      connections_.fetch_add(1, std::memory_order_relaxed);
      hooks_.connections->Add();
      auto conn = std::make_shared<Conn>(cfd);
      std::lock_guard<std::mutex> lock(readers_mu_);
      reader_threads_.emplace_back(&Server::ReaderLoop, this, std::move(conn));
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
  }
  if (tcp_listen_fd_ >= 0) {
    ::close(tcp_listen_fd_);
    tcp_listen_fd_ = -1;
  }
}

void Server::ReaderLoop(std::shared_ptr<Conn> conn) {
  std::string payload;
  while (!draining()) {
    struct pollfd pfd;
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int pr = ::poll(&pfd, 1, kPollMs);
    if (pr <= 0) continue;
    bool eof = false;
    const Status st = ReadFrame(conn->fd, &payload, &eof);
    if (!st.ok()) {
      // The byte stream is out of sync; nothing after this point can be
      // framed reliably, so the only safe move is to drop the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.protocol_errors->Add();
      RETINA_LOG(Warning) << "serve: " << st.ToString();
      break;
    }
    if (eof) break;
    if (!HandleFrame(conn, payload)) break;
  }
  ::shutdown(conn->fd, SHUT_RD);
  // The Conn (and its fd) stays alive until the last queued WorkItem's
  // response has been written; the shared_ptr does the bookkeeping.
}

bool Server::HandleFrame(const std::shared_ptr<Conn>& conn,
                         const std::string& payload) {
  const Result<MessageType> type = PeekMessageType(payload);
  if (!type.ok()) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    hooks_.protocol_errors->Add();
    RETINA_LOG(Warning) << "serve: " << type.status().ToString();
    return false;
  }
  switch (type.ValueOrDie()) {
    case MessageType::kScoreRequest: {
      ScoreRequest req;
      const Status st = DecodeScoreRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        hooks_.protocol_errors->Add();
        RETINA_LOG(Warning) << "serve: " << st.ToString();
        return false;
      }
      const uint64_t request_id = req.request_id;
      WorkItem item;
      item.conn = conn;
      item.req = std::move(req);
      // Thread hand-off: capture the enqueuer's ambient trace context for
      // the worker to adopt — the ThreadPool::Run invariant, applied to
      // the admission queue. A client that sent its own trace context
      // takes precedence: the daemon's handle span then parents under the
      // client's send span, stitching one cross-process trace.
      if (item.req.trace_id != 0) {
        item.ctx.trace_id = item.req.trace_id;
        item.ctx.span_id = item.req.span_id;
      } else {
        item.ctx = obs::CurrentTraceContext();
      }
      item.enqueue_ns = NowNs();
      if (!queue_.TryPush(std::move(item))) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        hooks_.shed->Add();
        ScoreResponse resp;
        resp.request_id = request_id;
        resp.code = ResponseCode::kShed;
        resp.message = "admission queue full";
        WriteResponse(conn.get(), resp);
        return true;
      }
      requests_.fetch_add(1, std::memory_order_relaxed);
      hooks_.requests->Add();
      const uint64_t depth = queue_.size();
      uint64_t peak = queue_depth_peak_.load(std::memory_order_relaxed);
      while (depth > peak && !queue_depth_peak_.compare_exchange_weak(
                                 peak, depth, std::memory_order_relaxed)) {
      }
      hooks_.queue_depth_peak->UpdateMax(static_cast<int64_t>(depth));
      return true;
    }
    case MessageType::kStatsRequest: {
      StatsRequest req;
      const Status st = DecodeStatsRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        hooks_.protocol_errors->Add();
        return false;
      }
      StatsResponse resp;
      resp.request_id = req.request_id;
      SnapshotStats(&resp.stats);
      handler_->AppendStats(&resp.stats);
      const std::string encoded = EncodeStatsResponse(resp);
      std::lock_guard<std::mutex> lock(conn->write_mu);
      const Status wst = WriteFrame(conn->fd, encoded);
      if (!wst.ok()) write_errors_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    case MessageType::kMetricsRequest: {
      MetricsRequest req;
      const Status st = DecodeMetricsRequest(payload, &req);
      if (!st.ok()) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        hooks_.protocol_errors->Add();
        return false;
      }
      MetricsResponse resp;
      resp.request_id = req.request_id;
      resp.snapshot = obs::Registry::Global().TakeSnapshot();
      // Overlay the authoritative server-owned stats (and the handler's)
      // onto the counter map: identical values when obs is on, and the
      // only live values when it is disabled or compiled out.
      std::map<std::string, uint64_t> stats;
      SnapshotStats(&stats);
      handler_->AppendStats(&stats);
      for (const auto& [key, value] : stats) {
        resp.snapshot.counters[key] = value;
      }
      const std::string encoded = EncodeMetricsResponse(resp);
      std::lock_guard<std::mutex> lock(conn->write_mu);
      const Status wst = WriteFrame(conn->fd, encoded);
      if (!wst.ok()) write_errors_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    default:
      // A client pushing response-typed frames at the server is as
      // out-of-contract as garbage bytes.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.protocol_errors->Add();
      return false;
  }
}

void Server::DispatchLoop() {
  const size_t n = pool_->num_threads();
  pool_->Run(n, [this](size_t w) { WorkerLoop(w); });
}

void Server::WorkerLoop(size_t worker) {
  const size_t max_batch = std::max<size_t>(1, options_.coalesce_max_batch);
  std::vector<WorkItem> run;
  std::vector<size_t> group;
  run.reserve(max_batch);
  while (true) {
    run.clear();
    if (!queue_.PopBatch(&run, max_batch)) break;
    // Linger: a bounded number of extra non-blocking polls gives closely
    // spaced arrivals a chance to join this run. Counted in polls rather
    // than wall time so the window is deterministic under test scheduling
    // and costs nothing when the queue is already keeping workers busy.
    for (size_t poll = 0;
         max_batch > 1 && poll < options_.coalesce_linger_polls &&
         run.size() < max_batch;
         ++poll) {
      if (queue_.TryPopBatch(&run, max_batch - run.size()) == 0) {
        std::this_thread::yield();
      }
    }
    // Group the FIFO run by tweet id in first-appearance order. Dispatch
    // order across groups follows each group's first item, and items
    // within a group keep their relative order, so coalescing never
    // reorders what a single connection observes.
    size_t grouped = 0;
    while (grouped < run.size()) {
      group.clear();
      const uint64_t tweet = run[grouped].req.tweet_id;
      for (size_t i = grouped; i < run.size(); ++i) {
        if (run[i].conn != nullptr && run[i].req.tweet_id == tweet) {
          group.push_back(i);
        }
      }
      DispatchGroup(worker, &run, group);
      while (grouped < run.size() && run[grouped].conn == nullptr) ++grouped;
    }
  }
}

void Server::DispatchGroup(size_t worker, std::vector<WorkItem>* items,
                           const std::vector<size_t>& indices) {
  const uint64_t start_ns = NowNs();
  for (size_t idx : indices) {
    const WorkItem& item = (*items)[idx];
    if (start_ns > item.enqueue_ns) {
      hooks_.queue_wait_ns->Record(start_ns - item.enqueue_ns);
    }
  }
  std::vector<const ScoreRequest*> reqs;
  reqs.reserve(indices.size());
  for (size_t idx : indices) reqs.push_back(&(*items)[idx].req);
  // Adopt the FIRST-enqueued item's trace context for the fused call (and
  // restore our own after): one handler call, one ambient trace — the
  // cross-thread hand-off invariant, extended to coalesced groups.
  const obs::TraceContext saved = obs::CurrentTraceContext();
  obs::SetCurrentTraceContext((*items)[indices.front()].ctx);
  std::vector<ScoreResponse> resps;
  {
    obs::TraceRequestScope request_scope;
    RETINA_OBS_SPAN("serve.handle");
    handler_->HandleScoreBatch(worker, reqs, &resps);
  }
  obs::SetCurrentTraceContext(saved);
  for (size_t i = 0; i < indices.size(); ++i) {
    ScoreResponse& resp = resps[i];
    if (resp.code == ResponseCode::kError) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      hooks_.errors->Add();
    }
    WorkItem& item = (*items)[indices[i]];
    WriteResponse(item.conn.get(), resp);
    responses_.fetch_add(1, std::memory_order_relaxed);
    hooks_.responses->Add();
    item = WorkItem();  // release the Conn reference; marks the slot done
  }
  hooks_.handle_ns->Record(NowNs() - start_ns);
  if (indices.size() >= 2) {
    coalesce_batches_.fetch_add(1, std::memory_order_relaxed);
    coalesce_batched_requests_.fetch_add(indices.size(),
                                         std::memory_order_relaxed);
    hooks_.coalesce_batches->Add();
    hooks_.coalesce_batched_requests->Add(indices.size());
  }
  MaybeTickMetrics(indices.size());
}

void Server::MaybeTickMetrics(size_t n_done) {
  const size_t every = options_.metrics_tick_requests;
  if (every == 0 || n_done == 0) return;
  // fetch_add hands each boundary to exactly one worker, so a cadence
  // tick never runs twice for the same crossing.
  const uint64_t after =
      metrics_tick_counter_.fetch_add(n_done, std::memory_order_relaxed) +
      n_done;
  if (after / every == (after - n_done) / every) return;
  if (obs::Enabled()) {
    obs::Registry& reg = obs::Registry::Global();
    reg.TickWindows();
    reg.SampleProcessGauges();  // live peak RSS for kMetrics / retina_top
  }
  if (!options_.prom_out.empty()) {
    // Single writer: a worker that finds the lock held skips this refresh
    // rather than queueing file writes behind the scoring path.
    if (prom_mu_.try_lock()) {
      const Status st = obs::ExportPrometheus(options_.prom_out);
      prom_mu_.unlock();
      if (!st.ok()) {
        RETINA_LOG(Warning) << "serve: prometheus export failed: "
                            << st.ToString();
      }
    }
  }
}

void Server::WriteResponse(Conn* conn, const ScoreResponse& resp) {
  const std::string encoded = EncodeScoreResponse(resp);
  std::lock_guard<std::mutex> lock(conn->write_mu);
  const Status st = WriteFrame(conn->fd, encoded);
  if (!st.ok()) {
    // The client went away before its answer; all we owe the rest of the
    // system is the count.
    write_errors_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::SnapshotStats(std::map<std::string, uint64_t>* stats) const {
  (*stats)["serve.connections"] = connections_.load(std::memory_order_relaxed);
  (*stats)["serve.requests"] = requests_.load(std::memory_order_relaxed);
  (*stats)["serve.responses"] = responses_.load(std::memory_order_relaxed);
  (*stats)["serve.shed"] = shed_.load(std::memory_order_relaxed);
  (*stats)["serve.errors"] = errors_.load(std::memory_order_relaxed);
  (*stats)["serve.protocol_errors"] =
      protocol_errors_.load(std::memory_order_relaxed);
  (*stats)["serve.write_errors"] =
      write_errors_.load(std::memory_order_relaxed);
  (*stats)["serve.queue_depth_peak"] =
      queue_depth_peak_.load(std::memory_order_relaxed);
  (*stats)["serve.queue_capacity"] = queue_.capacity();
  (*stats)["serve.workers"] = handler_->num_workers();
  (*stats)["serve.coalesce.batches"] =
      coalesce_batches_.load(std::memory_order_relaxed);
  (*stats)["serve.coalesce.batched_requests"] =
      coalesce_batched_requests_.load(std::memory_order_relaxed);
  (*stats)["serve.coalesce.max_batch"] =
      std::max<size_t>(1, options_.coalesce_max_batch);
  (*stats)["serve.draining"] = draining() ? 1 : 0;
}

}  // namespace retina::serve
