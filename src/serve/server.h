// retina::serve daemon core: a stream-socket server (Unix-domain and/or
// TCP, same frame protocol on both) that feeds a bounded admission queue
// drained by a retina::par worker pool through a coalescing dispatcher.
//
// Thread architecture (N = handler->num_workers()):
//
//   accept thread      polls every listener (Unix socket, TCP, or both),
//                      one reader thread per connection; promotes an
//                      external SIGTERM/SIGINT into RequestShutdown().
//   reader threads     decode frames. kScoreRequest -> TryPush onto the
//                      admission queue, answering kShed immediately when
//                      it is full (shed-on-full keeps overload latency
//                      bounded); kStatsRequest answered inline.
//   dispatcher thread  runs pool->Run(N, worker-loop) on a dedicated
//                      N-thread retina::par pool. Each worker loop pops
//                      until the queue closes. Because the loops execute
//                      inside a parallel region, the model forward's own
//                      ParallelFor runs inline — each request is scored
//                      single-threaded on its worker, deterministically,
//                      and N requests score concurrently.
//
// Same-tweet coalescing (the batching dispatcher): the paper's serving
// shape is cascade scoring — many concurrent "who retweets tweet T
// next?" requests against the same hot tweet — which is exactly what the
// engine's batched GEMM path was built for. Instead of popping one item,
// a worker pops a contiguous FIFO run of up to coalesce_max_batch items
// (BoundedQueue::PopBatch), lingers for coalesce_linger_polls extra
// non-blocking queue polls to let a partial batch fill (polls, not wall
// clock, so tests stay deterministic), groups the run by tweet id in
// first-appearance order, and hands each group to
// Handler::HandleScoreBatch as one fused call. Fan-out is byte-identical
// to unbatched handling — the engine's batched-forward contract makes
// entry i of a fused batch bit-equal to a lone request's score — and
// every response still goes to its own connection. Items leave the queue
// strictly FIFO; coalescing never reorders admission.
//
// TraceContext discipline (the standing invariant): the queue is a
// thread hand-off, so each WorkItem captures the enqueuing reader's
// obs::TraceContext and the worker adopts it around handling (restoring
// its own afterwards), exactly the way par::ThreadPool::Run does for its
// job submitter. A coalesced group adopts the FIRST-enqueued item's
// context — one fused handler call, one ambient trace — and a
// TraceRequestScope inside the adopted context then mints the
// per-request (per-batch) trace id.
//
// Drain state machine (SIGTERM or RequestShutdown()):
//
//   ACCEPTING --> DRAINING: stop accepting (listener closed, socket file
//              unlinked), readers finish their current frame and exit --
//              nothing new enters the queue.
//   DRAINING  --> DRAINED: queue closed; workers finish every item that
//              was admitted (BoundedQueue::Pop hands out queued items
//              after Close), write their responses, and exit.
//   Wait() then returns so the daemon can export --metrics-out /
//   --trace-out. Admitted requests are never dropped: an item either
//   gets a response or was shed at admission with an immediate reply.
//
// Stats served over kStats come from server-owned atomics (not
// retina::obs), so the protocol behaves identically when obs is
// disabled or compiled out — observers never change behavior.
//
// Live telemetry (kMetrics + the metrics cadence): kMetricsRequest is
// answered inline on the reader thread, like kStats, with a typed
// obs::RegistrySnapshot — the server-owned stats (and the handler's) are
// overlaid onto the counter map so the reply stays authoritative with obs
// off. The dispatcher drives a logical metrics clock: every
// metrics_tick_requests handled requests it rotates the windowed
// histograms (so SnapshotWindow answers "p99 over the recent past"),
// re-samples the process gauges, and — when prom_out is set — atomically
// refreshes the Prometheus exposition file. The cadence counts requests,
// never wall time, so the obs-on ≡ obs-off determinism pin is untouched.

#ifndef RETINA_SERVE_SERVER_H_
#define RETINA_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"
#include "common/obs.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "serve/handler.h"
#include "serve/protocol.h"

namespace retina::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket (empty = no Unix
  /// listener). A leftover file at the path is connect-probed first: if a
  /// live daemon answers, Start() fails instead of stealing its socket;
  /// if nothing answers (a SIGKILL'd prior run left a stale inode), the
  /// file is unlinked and the bind proceeds. The daemon unlinks the path
  /// again on drain.
  std::string socket_path;
  /// TCP listen address as "host:port" (empty = no TCP listener). Bound
  /// with SO_REUSEADDR; port 0 asks the kernel for a free port, readable
  /// afterwards via tcp_port(). Same frame protocol, same admission/shed/
  /// drain machinery as the Unix listener. At least one of socket_path /
  /// listen_address must be set.
  std::string listen_address;
  /// Admission-queue capacity; requests beyond it are shed (kShed reply).
  size_t queue_capacity = 256;
  /// Upper bound on how many queued same-tweet score requests one worker
  /// fuses into a single Handler::HandleScoreBatch call. 1 disables
  /// coalescing (every request dispatches alone, the pre-coalescing
  /// behavior).
  size_t coalesce_max_batch = 16;
  /// Extra non-blocking queue polls a worker spends topping up a partial
  /// run before dispatching it. Measured in polls, not wall time, so the
  /// linger window is deterministic under test scheduling.
  size_t coalesce_linger_polls = 2;
  /// Install SIGTERM/SIGINT handlers that trigger the graceful drain.
  /// The daemon main turns this on; tests drive RequestShutdown directly
  /// or raise() the signal themselves.
  bool install_signal_handler = false;
  /// Metrics cadence: every this-many handled score requests the
  /// dispatcher ticks the windowed histograms, re-samples process gauges,
  /// and refreshes prom_out. 0 disables the cadence entirely.
  size_t metrics_tick_requests = 64;
  /// Path of the Prometheus text-exposition file, refreshed atomically
  /// (write temp + rename) on the metrics cadence and once at drain.
  /// Empty disables the writer.
  std::string prom_out;
};

/// \brief One listening socket + admission queue + worker pool around a
/// Handler. Start() spawns the threads; Wait() blocks until a drain
/// completes. The handler must outlive the server.
class Server {
 public:
  Server(Handler* handler, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts the accept/dispatch machinery.
  Status Start();

  /// Blocks until the drain state machine has fully run (triggered by
  /// RequestShutdown or a handled signal). Returns only after every
  /// admitted request has been answered and all threads joined.
  Status Wait();

  /// Idempotent, thread-safe drain trigger — the programmatic SIGTERM.
  void RequestShutdown();

  /// True once a shutdown/drain has been requested.
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Port the TCP listener actually bound (useful with listen_address
  /// ":0"); 0 when no TCP listener was configured or before Start().
  uint16_t tcp_port() const { return tcp_port_; }

  /// Server-owned traffic counters (see header comment), merged with the
  /// handler's stats. Safe to call any time, including during traffic.
  void SnapshotStats(std::map<std::string, uint64_t>* stats) const;

 private:
  struct Conn {
    explicit Conn(int fd_in) : fd(fd_in) {}
    ~Conn();
    const int fd;
    std::mutex write_mu;  ///< serializes worker/reader frame writes
  };

  /// An admitted request: the decoded frame plus the enqueuer's trace
  /// context and the admission timestamp (for serve.queue_wait_ns).
  struct WorkItem {
    std::shared_ptr<Conn> conn;
    ScoreRequest req;
    obs::TraceContext ctx;
    uint64_t enqueue_ns = 0;
  };

  Status StartUnixListener();
  Status StartTcpListener();
  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Conn> conn);
  void DispatchLoop();
  void WorkerLoop(size_t worker);
  /// Dispatches one coalesced same-tweet group (`items[indices]`) as a
  /// single handler call and fans the responses back out.
  void DispatchGroup(size_t worker, std::vector<WorkItem>* items,
                     const std::vector<size_t>& indices);
  /// Reader-side handling of a single decoded frame; false closes the
  /// connection (protocol error or unsupported type).
  bool HandleFrame(const std::shared_ptr<Conn>& conn,
                   const std::string& payload);
  void WriteResponse(Conn* conn, const ScoreResponse& resp);
  /// Advances the logical metrics clock by `n_done` handled requests and,
  /// on a cadence boundary, ticks the window ring, re-samples process
  /// gauges, and refreshes the Prometheus file.
  void MaybeTickMetrics(size_t n_done);

  Handler* handler_;
  ServerOptions options_;
  int listen_fd_ = -1;      ///< Unix-domain listener, -1 when absent
  int tcp_listen_fd_ = -1;  ///< TCP listener, -1 when absent
  uint16_t tcp_port_ = 0;
  bool started_ = false;

  par::BoundedQueue<WorkItem> queue_;
  std::unique_ptr<par::ThreadPool> pool_;
  std::atomic<bool> draining_{false};

  std::thread accept_thread_;
  std::thread dispatch_thread_;
  std::mutex readers_mu_;  ///< guards reader_threads_ growth vs. join
  std::vector<std::thread> reader_threads_;

  // Authoritative traffic counters: plain atomics, deliberately not obs
  // instruments, so kStats replies are identical with obs disabled.
  std::atomic<uint64_t> connections_{0};
  std::atomic<uint64_t> requests_{0};   ///< admitted score requests
  std::atomic<uint64_t> responses_{0};  ///< score responses written
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> errors_{0};  ///< kError responses (bad requests)
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> write_errors_{0};
  std::atomic<uint64_t> queue_depth_peak_{0};
  /// Coalescing outcome counters: a "batch" is a fused handler call
  /// covering >= 2 requests; batched_requests is the requests those calls
  /// covered. avg batch size = batched_requests / batches.
  std::atomic<uint64_t> coalesce_batches_{0};
  std::atomic<uint64_t> coalesce_batched_requests_{0};
  /// Logical metrics clock: handled-request count feeding the cadence.
  std::atomic<uint64_t> metrics_tick_counter_{0};
  std::mutex prom_mu_;  ///< single prom writer; boundary crossers skip

  /// Observational mirrors, resolved once at construction.
  struct ObsHooks {
    static ObsHooks Resolve();
    obs::Counter* connections;
    obs::Counter* requests;
    obs::Counter* responses;
    obs::Counter* shed;
    obs::Counter* errors;
    obs::Counter* protocol_errors;
    obs::Counter* coalesce_batches;
    obs::Counter* coalesce_batched_requests;
    obs::Gauge* queue_depth_peak;
    obs::Gauge* queue_capacity;
    obs::Gauge* workers;
    obs::Gauge* coalesce_max_batch;
    // Windowed: one Record feeds both the cumulative histogram (same
    // registry name, shared storage) and the current window slot.
    obs::WindowedHistogram* queue_wait_ns;
    obs::WindowedHistogram* handle_ns;
  };
  ObsHooks hooks_;
};

}  // namespace retina::serve

#endif  // RETINA_SERVE_SERVER_H_
