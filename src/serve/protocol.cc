#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace retina::serve {

namespace {

// --- little-endian append/read helpers -------------------------------------

void AppendU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

/// Bounds-checked forward cursor over a payload; every read fails softly
/// so decoders can surface truncation as a Status.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }
  bool ReadBytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size() || pos_ + n < pos_) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void AppendHeader(std::string* out, MessageType type) {
  AppendU32(out, kProtocolMagic);
  AppendU16(out, kProtocolVersion);
  out->push_back(static_cast<char>(type));
  out->push_back(0);  // reserved
}

Status Corrupt(const std::string& what) {
  return Status::IOError("corrupt serve frame: " + what);
}

/// Validates the fixed header and that the type matches `want`; reports
/// the frame's (accepted) version so body decoders can branch on it.
Status ConsumeHeader(Cursor* cur, MessageType want, uint16_t* version_out) {
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t type = 0, reserved = 0;
  if (!cur->ReadU32(&magic) || !cur->ReadU16(&version) ||
      !cur->ReadU8(&type) || !cur->ReadU8(&reserved)) {
    return Corrupt("truncated header");
  }
  if (magic != kProtocolMagic) return Corrupt("bad magic");
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  if (reserved != 0) return Corrupt("nonzero reserved byte");
  if (type != static_cast<uint8_t>(want)) {
    return Corrupt("unexpected message type " + std::to_string(type));
  }
  if (version_out != nullptr) *version_out = version;
  return Status::OK();
}

Status ConsumeHeader(Cursor* cur, MessageType want) {
  return ConsumeHeader(cur, want, nullptr);
}

Status ExpectEnd(const Cursor& cur) {
  if (!cur.AtEnd()) {
    return Corrupt(std::to_string(cur.remaining()) + " trailing bytes");
  }
  return Status::OK();
}

}  // namespace

Result<MessageType> PeekMessageType(std::string_view payload) {
  Cursor cur(payload);
  uint32_t magic = 0;
  uint16_t version = 0;
  uint8_t type = 0, reserved = 0;
  if (!cur.ReadU32(&magic) || !cur.ReadU16(&version) || !cur.ReadU8(&type) ||
      !cur.ReadU8(&reserved)) {
    return Corrupt("truncated header");
  }
  if (magic != kProtocolMagic) return Corrupt("bad magic");
  if (version < kMinProtocolVersion || version > kProtocolVersion) {
    return Corrupt("unsupported version " + std::to_string(version));
  }
  if (reserved != 0) return Corrupt("nonzero reserved byte");
  if (type < static_cast<uint8_t>(MessageType::kScoreRequest) ||
      type > static_cast<uint8_t>(MessageType::kMetricsResponse)) {
    return Corrupt("unknown message type " + std::to_string(type));
  }
  return static_cast<MessageType>(type);
}

std::string EncodeScoreRequest(const ScoreRequest& req) {
  std::string out;
  out.reserve(kPayloadHeaderBytes + 36 + 4 * req.users.size());
  AppendHeader(&out, MessageType::kScoreRequest);
  AppendU64(&out, req.request_id);
  AppendU64(&out, req.tweet_id);
  AppendU32(&out, static_cast<uint32_t>(req.users.size()));
  for (uint32_t u : req.users) AppendU32(&out, u);
  AppendU64(&out, req.trace_id);
  AppendU64(&out, req.span_id);
  return out;
}

std::string EncodeScoreResponse(const ScoreResponse& resp) {
  std::string out;
  AppendHeader(&out, MessageType::kScoreResponse);
  AppendU64(&out, resp.request_id);
  out.push_back(static_cast<char>(resp.code));
  if (resp.code == ResponseCode::kOk) {
    AppendU32(&out, static_cast<uint32_t>(resp.scores.size()));
    for (double s : resp.scores) AppendU64(&out, std::bit_cast<uint64_t>(s));
  } else {
    AppendU32(&out, static_cast<uint32_t>(resp.message.size()));
    out.append(resp.message);
  }
  return out;
}

std::string EncodeStatsRequest(const StatsRequest& req) {
  std::string out;
  AppendHeader(&out, MessageType::kStatsRequest);
  AppendU64(&out, req.request_id);
  return out;
}

std::string EncodeStatsResponse(const StatsResponse& resp) {
  std::string out;
  AppendHeader(&out, MessageType::kStatsResponse);
  AppendU64(&out, resp.request_id);
  AppendU32(&out, static_cast<uint32_t>(resp.stats.size()));
  for (const auto& [key, value] : resp.stats) {  // std::map: sorted keys
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU64(&out, value);
  }
  return out;
}

Status DecodeScoreRequest(std::string_view payload, ScoreRequest* out) {
  Cursor cur(payload);
  uint16_t version = 0;
  RETINA_RETURN_NOT_OK(
      ConsumeHeader(&cur, MessageType::kScoreRequest, &version));
  uint32_t n = 0;
  if (!cur.ReadU64(&out->request_id) || !cur.ReadU64(&out->tweet_id) ||
      !cur.ReadU32(&n)) {
    return Corrupt("truncated score request");
  }
  // v1 ends at the user list; v2 appends the 16-byte trace tail.
  const size_t trace_tail = version >= 2 ? 16 : 0;
  if (cur.remaining() != 4u * n + trace_tail) {
    return Corrupt("score request user count disagrees with body size");
  }
  out->users.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!cur.ReadU32(&out->users[i])) return Corrupt("truncated user list");
  }
  out->trace_id = 0;
  out->span_id = 0;
  if (version >= 2 &&
      (!cur.ReadU64(&out->trace_id) || !cur.ReadU64(&out->span_id))) {
    return Corrupt("truncated score request trace context");
  }
  return ExpectEnd(cur);
}

Status DecodeScoreResponse(std::string_view payload, ScoreResponse* out) {
  Cursor cur(payload);
  RETINA_RETURN_NOT_OK(ConsumeHeader(&cur, MessageType::kScoreResponse));
  uint8_t code = 0;
  if (!cur.ReadU64(&out->request_id) || !cur.ReadU8(&code)) {
    return Corrupt("truncated score response");
  }
  if (code > static_cast<uint8_t>(ResponseCode::kError)) {
    return Corrupt("unknown response code " + std::to_string(code));
  }
  out->code = static_cast<ResponseCode>(code);
  out->scores.clear();
  out->message.clear();
  uint32_t n = 0;
  if (!cur.ReadU32(&n)) return Corrupt("truncated score response");
  if (out->code == ResponseCode::kOk) {
    if (cur.remaining() != 8u * n) {
      return Corrupt("score count disagrees with body size");
    }
    out->scores.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      uint64_t bits = 0;
      if (!cur.ReadU64(&bits)) return Corrupt("truncated score list");
      out->scores[i] = std::bit_cast<double>(bits);
    }
  } else {
    if (!cur.ReadBytes(n, &out->message)) {
      return Corrupt("truncated response message");
    }
  }
  return ExpectEnd(cur);
}

Status DecodeStatsRequest(std::string_view payload, StatsRequest* out) {
  Cursor cur(payload);
  RETINA_RETURN_NOT_OK(ConsumeHeader(&cur, MessageType::kStatsRequest));
  if (!cur.ReadU64(&out->request_id)) return Corrupt("truncated stats request");
  return ExpectEnd(cur);
}

Status DecodeStatsResponse(std::string_view payload, StatsResponse* out) {
  Cursor cur(payload);
  RETINA_RETURN_NOT_OK(ConsumeHeader(&cur, MessageType::kStatsResponse));
  uint32_t n = 0;
  if (!cur.ReadU64(&out->request_id) || !cur.ReadU32(&n)) {
    return Corrupt("truncated stats response");
  }
  out->stats.clear();
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key_len = 0;
    if (!cur.ReadU32(&key_len)) return Corrupt("truncated stats entry");
    std::string key;
    uint64_t value = 0;
    if (!cur.ReadBytes(key_len, &key) || !cur.ReadU64(&value)) {
      return Corrupt("truncated stats entry");
    }
    if (!out->stats.emplace(std::move(key), value).second) {
      return Corrupt("duplicate stats key");
    }
  }
  return ExpectEnd(cur);
}

std::string EncodeMetricsRequest(const MetricsRequest& req) {
  std::string out;
  AppendHeader(&out, MessageType::kMetricsRequest);
  AppendU64(&out, req.request_id);
  return out;
}

std::string EncodeMetricsResponse(const MetricsResponse& resp) {
  std::string out;
  AppendHeader(&out, MessageType::kMetricsResponse);
  AppendU64(&out, resp.request_id);
  const obs::RegistrySnapshot& snap = resp.snapshot;
  AppendU32(&out, static_cast<uint32_t>(snap.counters.size()));
  for (const auto& [key, value] : snap.counters) {  // std::map: sorted keys
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU64(&out, value);
  }
  AppendU32(&out, static_cast<uint32_t>(snap.gauges.size()));
  for (const auto& [key, value] : snap.gauges) {
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU64(&out, static_cast<uint64_t>(value));  // two's complement
  }
  AppendU32(&out, static_cast<uint32_t>(snap.histograms.size()));
  for (const auto& [key, h] : snap.histograms) {
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU64(&out, h.count);
    AppendU64(&out, h.sum);
    AppendU64(&out, h.p50);
    AppendU64(&out, h.p95);
    AppendU64(&out, h.p99);
  }
  AppendU32(&out, static_cast<uint32_t>(snap.windows.size()));
  for (const auto& [key, w] : snap.windows) {
    AppendU32(&out, static_cast<uint32_t>(key.size()));
    out.append(key);
    AppendU64(&out, w.ticks);
    AppendU64(&out, w.slots);
    AppendU64(&out, w.window.count);
    AppendU64(&out, w.window.sum);
    AppendU64(&out, w.window.p50);
    AppendU64(&out, w.window.p95);
    AppendU64(&out, w.window.p99);
  }
  return out;
}

Status DecodeMetricsRequest(std::string_view payload, MetricsRequest* out) {
  Cursor cur(payload);
  RETINA_RETURN_NOT_OK(ConsumeHeader(&cur, MessageType::kMetricsRequest));
  if (!cur.ReadU64(&out->request_id)) {
    return Corrupt("truncated metrics request");
  }
  return ExpectEnd(cur);
}

Status DecodeMetricsResponse(std::string_view payload, MetricsResponse* out) {
  Cursor cur(payload);
  RETINA_RETURN_NOT_OK(ConsumeHeader(&cur, MessageType::kMetricsResponse));
  if (!cur.ReadU64(&out->request_id)) {
    return Corrupt("truncated metrics response");
  }
  obs::RegistrySnapshot& snap = out->snapshot;
  snap = obs::RegistrySnapshot();

  uint32_t n = 0;
  if (!cur.ReadU32(&n)) return Corrupt("truncated metrics counters");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key_len = 0;
    std::string key;
    uint64_t value = 0;
    if (!cur.ReadU32(&key_len) || !cur.ReadBytes(key_len, &key) ||
        !cur.ReadU64(&value)) {
      return Corrupt("truncated metrics counter entry");
    }
    if (!snap.counters.emplace(std::move(key), value).second) {
      return Corrupt("duplicate metrics counter key");
    }
  }

  if (!cur.ReadU32(&n)) return Corrupt("truncated metrics gauges");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key_len = 0;
    std::string key;
    uint64_t bits = 0;
    if (!cur.ReadU32(&key_len) || !cur.ReadBytes(key_len, &key) ||
        !cur.ReadU64(&bits)) {
      return Corrupt("truncated metrics gauge entry");
    }
    if (!snap.gauges.emplace(std::move(key), static_cast<int64_t>(bits))
             .second) {
      return Corrupt("duplicate metrics gauge key");
    }
  }

  if (!cur.ReadU32(&n)) return Corrupt("truncated metrics histograms");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key_len = 0;
    std::string key;
    obs::HistogramSnapshot h;
    if (!cur.ReadU32(&key_len) || !cur.ReadBytes(key_len, &key) ||
        !cur.ReadU64(&h.count) || !cur.ReadU64(&h.sum) ||
        !cur.ReadU64(&h.p50) || !cur.ReadU64(&h.p95) || !cur.ReadU64(&h.p99)) {
      return Corrupt("truncated metrics histogram entry");
    }
    if (!snap.histograms.emplace(std::move(key), h).second) {
      return Corrupt("duplicate metrics histogram key");
    }
  }

  if (!cur.ReadU32(&n)) return Corrupt("truncated metrics windows");
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t key_len = 0;
    std::string key;
    obs::WindowSnapshot w;
    if (!cur.ReadU32(&key_len) || !cur.ReadBytes(key_len, &key) ||
        !cur.ReadU64(&w.ticks) || !cur.ReadU64(&w.slots) ||
        !cur.ReadU64(&w.window.count) || !cur.ReadU64(&w.window.sum) ||
        !cur.ReadU64(&w.window.p50) || !cur.ReadU64(&w.window.p95) ||
        !cur.ReadU64(&w.window.p99)) {
      return Corrupt("truncated metrics window entry");
    }
    if (!snap.windows.emplace(std::move(key), w).second) {
      return Corrupt("duplicate metrics window key");
    }
  }
  return ExpectEnd(cur);
}

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.empty() || payload.size() > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame payload size out of range: " +
                                   std::to_string(payload.size()));
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  AppendU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes. `*got` reports the byte count actually read
/// when the peer closed early (so callers can tell a clean EOF from a
/// mid-frame one).
Status ReadExact(int fd, char* buf, size_t n, size_t* got) {
  *got = 0;
  while (*got < n) {
    const ssize_t r = ::recv(fd, buf + *got, n - *got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    if (r == 0) return Status::OK();  // EOF; caller inspects *got
    *got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

Status ReadFrame(int fd, std::string* payload, bool* eof) {
  payload->clear();
  *eof = false;
  char len_buf[4];
  size_t got = 0;
  RETINA_RETURN_NOT_OK(ReadExact(fd, len_buf, sizeof(len_buf), &got));
  if (got == 0) {
    *eof = true;  // clean close at a frame boundary
    return Status::OK();
  }
  if (got < sizeof(len_buf)) return Corrupt("EOF inside frame length");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(len_buf[i])) << (8 * i);
  }
  if (len == 0 || len > kMaxFramePayloadBytes) {
    return Corrupt("frame length " + std::to_string(len) + " out of range");
  }
  payload->resize(len);
  RETINA_RETURN_NOT_OK(ReadExact(fd, payload->data(), len, &got));
  if (got < len) return Corrupt("EOF inside frame payload");
  return Status::OK();
}

}  // namespace retina::serve
