#include "datagen/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <optional>
#include <unordered_set>

#include "common/obs.h"
#include "common/trace.h"
#include "common/parallel.h"
#include "graph/generators.h"

namespace retina::datagen {

namespace {

uint64_t PairKey(NodeId a, NodeId b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

// Synthetic language: per-topic vocabularies plus a general pool.
struct SyntheticVocab {
  std::vector<std::vector<std::string>> topic_words;
  std::vector<std::string> general_words;
};

SyntheticVocab MakeVocab(const WorldConfig& config) {
  SyntheticVocab vocab;
  vocab.topic_words.resize(config.num_topics);
  char buf[64];
  for (size_t t = 0; t < config.num_topics; ++t) {
    vocab.topic_words[t].reserve(config.words_per_topic);
    for (size_t w = 0; w < config.words_per_topic; ++w) {
      std::snprintf(buf, sizeof(buf), "t%02zuw%03zu", t, w);
      vocab.topic_words[t].emplace_back(buf);
    }
  }
  vocab.general_words.reserve(config.general_words);
  for (size_t w = 0; w < config.general_words; ++w) {
    std::snprintf(buf, sizeof(buf), "gen%03zu", w);
    vocab.general_words.emplace_back(buf);
  }
  return vocab;
}

// Tweet-text generator shared by history tweets and root tweets.
class TextSampler {
 public:
  TextSampler(const SyntheticVocab& vocab, const text::HateLexicon& lexicon)
      : vocab_(vocab), lexicon_(lexicon) {}

  // Zipf-ish pick: quadratic skew toward low word indices so tf-idf has a
  // non-degenerate document-frequency profile.
  const std::string& PickWord(const std::vector<std::string>& pool,
                              Rng* rng) const {
    const double u = rng->Uniform();
    const size_t idx = static_cast<size_t>(u * u * static_cast<double>(pool.size()));
    return pool[std::min(idx, pool.size() - 1)];
  }

  // A "charged" topic word: drawn from the rare tail of the topic
  // vocabulary, over-represented in hateful text. Detectable by learned
  // n-gram features (the fine-tuned model) but invisible to the lexicon.
  const std::string& PickChargedWord(const std::vector<std::string>& pool,
                                     Rng* rng) const {
    const size_t start = pool.size() * 3 / 4;
    return pool[start + rng->UniformInt(pool.size() - start)];
  }

  std::vector<std::string> Make(size_t topic, bool hateful,
                                const std::string* hashtag, Rng* rng) const {
    std::vector<std::string> tokens;
    const int len = 9 + static_cast<int>(rng->UniformInt(8));
    tokens.reserve(static_cast<size_t>(len) + 4);
    if (hashtag != nullptr) tokens.push_back(*hashtag);
    for (int i = 0; i < len; ++i) {
      if (rng->Uniform() < 0.55) {
        if (hateful && rng->Uniform() < 0.4) {
          tokens.push_back(PickChargedWord(vocab_.topic_words[topic], rng));
        } else {
          tokens.push_back(PickWord(vocab_.topic_words[topic], rng));
        }
      } else {
        tokens.push_back(PickWord(vocab_.general_words, rng));
      }
    }
    // Lexicon injection keeps detection *hard*, as on the real data
    // (fine-tuned Davidson macro-F1 0.59): ~2/3 of hateful tweets use
    // explicit slurs, the rest are implicit (charged words only, perhaps a
    // colloquial term); benign text occasionally quotes slurs or uses the
    // colloquial terms innocently.
    if (hateful) {
      if (rng->Uniform() < 0.65 && !lexicon_.slur_terms().empty()) {
        const int n_slurs = 1 + static_cast<int>(rng->UniformInt(2));
        for (int i = 0; i < n_slurs; ++i) {
          tokens.push_back(lexicon_.slur_terms()[rng->UniformInt(
              lexicon_.slur_terms().size())]);
        }
      } else if (rng->Uniform() < 0.5 &&
                 !lexicon_.colloquial_terms().empty()) {
        tokens.push_back(lexicon_.colloquial_terms()[rng->UniformInt(
            lexicon_.colloquial_terms().size())]);
      }
    } else {
      if (rng->Uniform() < 0.015 && !lexicon_.slur_terms().empty()) {
        tokens.push_back(lexicon_.slur_terms()[rng->UniformInt(
            lexicon_.slur_terms().size())]);
      } else if (rng->Uniform() < 0.07 &&
                 !lexicon_.colloquial_terms().empty()) {
        tokens.push_back(lexicon_.colloquial_terms()[rng->UniformInt(
            lexicon_.colloquial_terms().size())]);
      }
    }
    return tokens;
  }

 private:
  const SyntheticVocab& vocab_;
  const text::HateLexicon& lexicon_;
};

}  // namespace

SyntheticWorld SyntheticWorld::Generate(const WorldConfig& config,
                                        uint64_t seed) {
  // Phase spans attribute generation wall time per pipeline stage; the
  // counters at the end feed the cascade/event throughput view. All of it
  // observes — the RNG draw sequence is exactly the uninstrumented one, so
  // worlds are bit-identical with obs on, off, or compiled out.
  obs::TraceRequestScope trace_run;  // one timeline trace id per generation
  RETINA_OBS_SPAN("datagen.generate");
  obs::Registry& obs_reg = obs::Registry::Global();
  std::optional<obs::Span> phase_span;
  phase_span.emplace(obs_reg.GetScope("datagen.users"), "datagen.users");

  SyntheticWorld world;
  world.config_ = config;
  Rng rng(seed);
  Rng user_rng = rng.Split();
  Rng net_rng = rng.Split();
  Rng news_rng = rng.Split();
  Rng hist_rng = rng.Split();
  Rng tweet_rng = rng.Split();
  Rng cascade_rng = rng.Split();

  const size_t n_users = config.num_users;
  const size_t n_topics = config.num_topics;

  world.hashtags_ = PaperHashtagTable(n_topics);
  const SyntheticVocab vocab = MakeVocab(config);
  world.lexicon_ =
      text::MakeSyntheticLexicon(config.lexicon_terms, config.lexicon_slurs);
  const TextSampler sampler(vocab, world.lexicon_);

  // ---- Users -------------------------------------------------------------
  world.users_.resize(n_users);
  std::vector<Vec> interests(n_users);
  std::vector<int> echo(n_users, -1);
  for (size_t u = 0; u < n_users; ++u) {
    UserProfile& p = world.users_[u];
    p.topic_interests = user_rng.Dirichlet(n_topics, 0.3);
    p.hate_propensity.assign(n_topics, 0.0);
    for (double& v : p.hate_propensity) v = user_rng.Uniform(0.0, 0.001);
    if (user_rng.Bernoulli(config.hater_fraction)) {
      // Hate-prone: strongest on the dominant interest, occasionally on
      // other topics (topic-dependent hatefulness, Figure 3).
      size_t dom = 0;
      for (size_t t = 1; t < n_topics; ++t) {
        if (p.topic_interests[t] > p.topic_interests[dom]) dom = t;
      }
      for (size_t t = 0; t < n_topics; ++t) {
        if (t == dom) {
          p.hate_propensity[t] = user_rng.Uniform(0.4, 0.9);
        } else if (user_rng.Bernoulli(0.3)) {
          p.hate_propensity[t] = user_rng.Uniform(0.1, 0.4);
        } else {
          p.hate_propensity[t] = user_rng.Uniform(0.0, 0.02);
        }
      }
      p.echo_community = static_cast<int>(dom);
    }
    p.activity = std::exp(user_rng.Normal(0.0, 0.7));
    p.account_age_days = user_rng.Uniform(60.0, 4000.0);
    interests[u] = p.topic_interests;
    echo[u] = p.echo_community;
  }

  // ---- Follower network ---------------------------------------------------
  phase_span.emplace(obs_reg.GetScope("datagen.network"), "datagen.network");
  world.network_ =
      graph::GenerateFollowerNetwork(interests, echo, config.network, &net_rng);

  // ---- News stream ---------------------------------------------------------
  phase_span.emplace(obs_reg.GetScope("datagen.news"), "datagen.news");
  world.news_ = GenerateNews(config, vocab.topic_words, vocab.general_words,
                             &news_rng);

  // ---- Activity histories ---------------------------------------------------
  phase_span.emplace(obs_reg.GetScope("datagen.histories"), "datagen.histories");
  // Hashtags grouped per topic, for history hashtag choice.
  std::vector<std::vector<size_t>> tags_by_topic(n_topics);
  for (size_t h = 0; h < world.hashtags_.size(); ++h) {
    tags_by_topic[world.hashtags_[h].topic].push_back(h);
  }

  world.histories_.resize(n_users);
  // Each user's timeline draws from its own seed-derived stream, so the
  // loop parallelizes without the thread count changing any history.
  const uint64_t hist_base = hist_rng.NextU64();
  par::ParallelFor(n_users, 16, [&](size_t u) {
    Rng user_hist_rng = Rng::Stream(hist_base, u);
    const UserProfile& p = world.users_[u];
    const double log_followers = std::log(
        1.0 + static_cast<double>(world.network_.FollowerCount(
                  static_cast<NodeId>(u))));
    auto& hist = world.histories_[u];
    hist.resize(config.history_length);
    for (size_t i = 0; i < hist.size(); ++i) {
      HistoryTweet& ht = hist[i];
      ht.time = -user_hist_rng.Uniform(0.0, 90.0 * 24.0);
      ht.topic = user_hist_rng.Categorical(p.topic_interests);
      // Histories reveal propensity only noisily: even prolific haters
      // keep most of their timeline clean, which is what makes the
      // hate-generation task genuinely hard (Table IV's modest scores).
      ht.is_hateful = user_hist_rng.Bernoulli(
          std::min(0.95, p.hate_propensity[ht.topic] * 0.3));
      const std::string* tag = nullptr;
      if (!tags_by_topic[ht.topic].empty() && user_hist_rng.Bernoulli(0.5)) {
        ht.hashtag = tags_by_topic[ht.topic][user_hist_rng.UniformInt(
            tags_by_topic[ht.topic].size())];
        tag = &world.hashtags_[ht.hashtag].tag;
      }
      ht.tokens = sampler.Make(ht.topic, ht.is_hateful, tag, &user_hist_rng);
      // Attention: hateful content by hate-prone users draws extra
      // retweets (the "hate preachers get engagement" signal, Section
      // IV-A features).
      double rt_rate = 0.4 + 0.8 * log_followers + 0.5 * p.activity;
      if (ht.is_hateful) rt_rate *= 2.5;
      ht.retweets_received = user_hist_rng.Poisson(rt_rate);
    }
    std::sort(hist.begin(), hist.end(),
              [](const HistoryTweet& a, const HistoryTweet& b) {
                return a.time < b.time;
              });
  });

  // ---- Root tweets ----------------------------------------------------------
  phase_span.emplace(obs_reg.GetScope("datagen.tweets"), "datagen.tweets");
  const size_t n_days = static_cast<size_t>(std::ceil(config.horizon_days));
  // Per-topic author-sampling CDFs: the base weight is interest^2 *
  // activity; the hater-conditioned CDF additionally weights by the
  // topic-conditional hate propensity, so hateful tweets originate from
  // hate-prone users (Matthew et al. [5]: a small fraction of users
  // generates most hate).
  std::vector<std::vector<double>> author_cdf(n_topics,
                                              std::vector<double>(n_users));
  std::vector<std::vector<double>> hater_cdf(n_topics,
                                             std::vector<double>(n_users));
  for (size_t t = 0; t < n_topics; ++t) {
    double acc = 0.0, hater_acc = 0.0;
    for (size_t u = 0; u < n_users; ++u) {
      const double base = world.users_[u].topic_interests[t] *
                          world.users_[u].topic_interests[t] *
                          world.users_[u].activity;
      acc += base;
      author_cdf[t][u] = acc;
      hater_acc += base * (world.users_[u].hate_propensity[t] + 0.002);
      hater_cdf[t][u] = hater_acc;
    }
    for (double& v : author_cdf[t]) v /= acc;
    for (double& v : hater_cdf[t]) v /= hater_acc;
  }
  auto sample_from_cdf = [&](const std::vector<double>& cdf,
                             Rng* r) -> NodeId {
    const double u = r->Uniform();
    auto it = std::upper_bound(cdf.begin(), cdf.end(), u);
    size_t idx = static_cast<size_t>(it - cdf.begin());
    if (idx >= n_users) idx = n_users - 1;
    return static_cast<NodeId>(idx);
  };
  auto sample_author = [&](size_t topic, Rng* r) -> NodeId {
    return sample_from_cdf(author_cdf[topic], r);
  };

  for (size_t h = 0; h < world.hashtags_.size(); ++h) {
    const HashtagInfo& info = world.hashtags_[h];
    const size_t n_tweets = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               static_cast<double>(info.target_tweets) * config.scale)));
    const size_t topic = info.topic;

    // Day weights: exogenous triggering by news intensity. The coupling
    // here is softer than the per-retweet modulation so the corpus keeps
    // tweets in calm periods too — otherwise every tweet sees a burst and
    // the exogenous features lose their between-tweet variance.
    std::vector<double> day_w(n_days);
    for (size_t d = 0; d < n_days; ++d) {
      const double intensity = world.news_.intensity()(topic, d);
      day_w[d] = std::max(
          0.05, 1.0 + 0.35 * config.exo_coupling * (intensity - 1.0));
    }

    // First pass: draw posting times so the exogenous boosts can be
    // normalized; hate is likelier when the topic is hot in the news.
    std::vector<double> times(n_tweets), boosts(n_tweets);
    double boost_sum = 0.0;
    for (size_t i = 0; i < n_tweets; ++i) {
      const size_t day = tweet_rng.Categorical(day_w);
      times[i] = (static_cast<double>(day) + tweet_rng.Uniform()) * 24.0;
      const double intensity = world.news_.IntensityAt(topic, times[i]);
      boosts[i] =
          1.0 + 0.4 * config.exo_coupling * std::max(0.0, intensity - 1.0);
      boost_sum += boosts[i];
    }
    const double mean_boost = boost_sum / static_cast<double>(n_tweets);
    const double target_rate = info.target_pct_hate / 100.0;

    // Second pass: label by the (exogenously modulated) Table II target
    // rate, then pick the author conditioned on the label.
    for (size_t i = 0; i < n_tweets; ++i) {
      Tweet tw;
      tw.hashtag = h;
      tw.time = times[i];
      tw.is_hateful = tweet_rng.Bernoulli(
          std::min(0.95, target_rate * boosts[i] / mean_boost));
      // A quarter of hateful tweets come from "fresh offenders" whose
      // history carries no hate signal — the irreducible error the paper's
      // models face (their best macro-F1 stalls at 0.65).
      tw.author = (tw.is_hateful && tweet_rng.Bernoulli(0.75))
                      ? sample_from_cdf(hater_cdf[topic], &tweet_rng)
                      : sample_author(topic, &tweet_rng);
      tw.machine_hateful = tw.is_hateful;
      tw.tokens = sampler.Make(topic, tw.is_hateful, &info.tag, &tweet_rng);
      world.tweets_.push_back(std::move(tw));
    }
  }
  std::sort(world.tweets_.begin(), world.tweets_.end(),
            [](const Tweet& a, const Tweet& b) { return a.time < b.time; });
  for (size_t i = 0; i < world.tweets_.size(); ++i) world.tweets_[i].id = i;

  // ---- Cascades ----------------------------------------------------------------
  phase_span.emplace(obs_reg.GetScope("datagen.cascades"), "datagen.cascades");
  // Echo-community membership, for the organized-spreader channel.
  std::vector<std::vector<NodeId>> community_members(n_topics);
  for (size_t u = 0; u < n_users; ++u) {
    const int c = world.users_[u].echo_community;
    if (c >= 0) community_members[static_cast<size_t>(c)].push_back(
        static_cast<NodeId>(u));
  }
  world.cascades_.resize(world.tweets_.size());
  // With follow-back reciprocity the graph has a giant reachable
  // component, so deeper levels must decay hard and the first-level
  // probability is calibrated assuming deeper levels roughly triple the
  // first level's contribution.
  const double depth_decay = 0.2;
  constexpr size_t kMaxCascade = 600;
  // Cascades are simulated in parallel: tweet i floods with
  // Rng::Stream(cascade_base, i) into its own world.cascades_[i] slot.
  const uint64_t cascade_base = cascade_rng.NextU64();
  par::ParallelFor(world.tweets_.size(), 1, [&](size_t i) {
    Rng tweet_cascade_rng = Rng::Stream(cascade_base, i);
    const Tweet& tw = world.tweets_[i];
    Cascade& cascade = world.cascades_[i];
    cascade.root_tweet = tw.id;
    const size_t topic = world.hashtags_[tw.hashtag].topic;
    const double target_avg = world.hashtags_[tw.hashtag].target_avg_retweets;
    const double root_followers = static_cast<double>(
        world.network_.FollowerCount(tw.author));
    double p0 = std::clamp(
        target_avg / (7.0 * (1.0 + root_followers)), 0.002, 0.6);
    if (tw.is_hateful) p0 = std::min(0.9, p0 * config.hate_virality);
    const double tau =
        tw.is_hateful ? config.hate_delay_tau : config.nonhate_delay_tau;

    std::unordered_set<NodeId> participants{tw.author};
    // BFS frontier: (user, infection time, depth).
    struct Frontier {
      NodeId user;
      double time;
      int depth;
    };
    std::vector<Frontier> frontier{{tw.author, tw.time, 0}};

    // Organized spreaders: for hateful roots, the author's echo community
    // coordinates early dissemination beyond the follow graph (the paper
    // links hate's fast early growth to organized spreaders). They join
    // the frontier so the chamber re-amplifies the cascade.
    if (tw.is_hateful) {
      const int community = world.users_[tw.author].echo_community;
      if (community >= 0) {
        for (NodeId member :
             community_members[static_cast<size_t>(community)]) {
          if (participants.count(member) > 0) continue;
          if (!tweet_cascade_rng.Bernoulli(config.organized_spreader_rate)) {
            continue;
          }
          participants.insert(member);
          const double t = tw.time + tweet_cascade_rng.Exponential(2.0 / tau);
          cascade.retweets.push_back({member, t, /*organic=*/false});
          frontier.push_back({member, t, 1});
        }
      }
    }
    while (!frontier.empty() && cascade.retweets.size() < kMaxCascade) {
      std::vector<Frontier> next;
      for (const Frontier& f : frontier) {
        if (f.depth >= config.max_cascade_depth) continue;
        for (NodeId v : world.network_.Followers(f.user)) {
          if (participants.count(v) > 0) continue;
          const UserProfile& pv = world.users_[v];
          const double align = std::min(
              1.5, pv.topic_interests[topic] * static_cast<double>(n_topics));
          double prob = p0 * align * std::pow(depth_decay, f.depth);
          if (tw.is_hateful) {
            prob *= (pv.hate_propensity[topic] > 0.2) ? config.echo_boost
                                                      : config.hate_suppress;
          }
          const double intensity = world.news_.IntensityAt(topic, f.time);
          const double exo_mod = std::clamp(
              1.0 + 0.6 * config.exo_coupling * (intensity - 1.0), 0.4, 4.0);
          prob = std::min(0.95, prob * exo_mod);
          if (!tweet_cascade_rng.Bernoulli(prob)) continue;
          const double delay = tweet_cascade_rng.Exponential(1.0 / tau);
          const double t = f.time + delay;
          if (t > tw.time + 14.0 * 24.0) continue;
          participants.insert(v);
          cascade.retweets.push_back({v, t, /*organic=*/true});
          next.push_back({v, t, f.depth + 1});
          if (cascade.retweets.size() >= kMaxCascade) break;
        }
        if (cascade.retweets.size() >= kMaxCascade) break;
      }
      frontier = std::move(next);
    }

    // Non-organic spread: promoted/search-driven retweeters outside the
    // follower paths. Hateful roots already spread beyond the follow graph
    // through their organized community; routing their promotion through
    // random interested users would leak exposure outside the chamber and
    // destroy the low-susceptibility signature of Figure 1(b).
    const int n_promo =
        tw.is_hateful ? 0
                      : tweet_cascade_rng.Poisson(
                            config.non_organic_fraction *
                            static_cast<double>(cascade.retweets.size()));
    for (int k = 0; k < n_promo; ++k) {
      const NodeId v = sample_author(topic, &tweet_cascade_rng);
      if (participants.count(v) > 0) continue;
      participants.insert(v);
      const double t = tw.time + tweet_cascade_rng.Exponential(1.0 / tau);
      cascade.retweets.push_back({v, t, /*organic=*/false});
    }

    std::sort(cascade.retweets.begin(), cascade.retweets.end(),
              [](const RetweetEvent& a, const RetweetEvent& b) {
                return a.time < b.time;
              });
  });

  phase_span.emplace(obs_reg.GetScope("datagen.replies"), "datagen.replies");
  // ---- Reply threads (Section IX-A extension) -----------------------------
  // Replies scale with the cascade's engagement; repliers are drawn from
  // the engaged audience (participants' followers + organized community).
  // Hateful roots attract supportive hate from the chamber and
  // counter-speech from ordinary repliers; non-hate roots occasionally
  // draw harassment from hate-prone repliers.
  Rng base_reply_rng = rng.Split();
  const uint64_t reply_base = base_reply_rng.NextU64();
  world.replies_.resize(world.tweets_.size());
  par::ParallelFor(world.tweets_.size(), 8, [&](size_t i) {
    Rng reply_rng = Rng::Stream(reply_base, i);
    const Tweet& tw = world.tweets_[i];
    const auto& cascade = world.cascades_[i];
    const double engagement =
        1.0 + static_cast<double>(cascade.retweets.size());
    const int n_replies =
        reply_rng.Poisson(config.reply_rate * engagement);
    if (n_replies == 0) return;
    // Candidate repliers: cascade participants and followers of the root.
    std::vector<NodeId> pool;
    for (const auto& rt : cascade.retweets) pool.push_back(rt.user);
    for (NodeId f : world.network_.Followers(tw.author)) pool.push_back(f);
    if (pool.empty()) return;
    auto& thread = world.replies_[i];
    const double tau =
        tw.is_hateful ? config.hate_delay_tau : config.nonhate_delay_tau;
    for (int r = 0; r < n_replies; ++r) {
      ReplyEvent reply;
      reply.user = pool[reply_rng.UniformInt(pool.size())];
      reply.time = tw.time + reply_rng.Exponential(1.0 / tau);
      const bool replier_prone =
          world.users_[reply.user].echo_community >= 0;
      if (tw.is_hateful) {
        if (replier_prone) {
          reply.is_hateful =
              reply_rng.Bernoulli(config.supportive_hate_rate);
        } else if (reply_rng.Bernoulli(config.counter_speech_rate)) {
          reply.counter_speech = true;
          // A slice of counter-speech is itself hateful ("counteracted
          // with hate speech via reply cascades", Section IX-A).
          reply.is_hateful = reply_rng.Bernoulli(0.25);
        }
      } else if (replier_prone) {
        reply.is_hateful = reply_rng.Bernoulli(config.harassment_rate);
      }
      thread.push_back(reply);
    }
    std::sort(thread.begin(), thread.end(),
              [](const ReplyEvent& a, const ReplyEvent& b) {
                return a.time < b.time;
              });
  });

  phase_span.emplace(obs_reg.GetScope("datagen.derived_indices"), "datagen.derived_indices");
  world.BuildDerivedIndices();
  phase_span.reset();

  if (obs::Enabled()) {
    // Event throughput: pair these counters with the datagen.* scope times
    // (events / total_s) in the exported summary.
    size_t rt_events = 0, reply_events = 0;
    for (const Cascade& c : world.cascades_) rt_events += c.retweets.size();
    for (const auto& thread : world.replies_) reply_events += thread.size();
    obs_reg.GetCounter("datagen.users")->Add(world.users_.size());
    obs_reg.GetCounter("datagen.tweets")->Add(world.tweets_.size());
    obs_reg.GetCounter("datagen.cascade_events")->Add(rt_events);
    obs_reg.GetCounter("datagen.reply_events")->Add(reply_events);
    obs_reg.GetCounter("datagen.history_tweets")
        ->Add(n_users * config.history_length);
  }

  return world;
}

Vec SyntheticWorld::TrendingIndicator(double time_hours, size_t dim,
                                      size_t top_n) const {
  Vec out(dim, 0.0);
  if (daily_ranking_.empty()) return out;
  int day = static_cast<int>(time_hours / 24.0);
  day = std::clamp(day, 0, static_cast<int>(daily_ranking_.size()) - 1);
  const auto& ranking = daily_ranking_[static_cast<size_t>(day)];
  const size_t n = std::min(top_n, ranking.size());
  for (size_t i = 0; i < n; ++i) {
    if (ranking[i] < dim) out[ranking[i]] = 1.0;
  }
  return out;
}

size_t SyntheticWorld::PastRetweetCount(NodeId root_author, NodeId user,
                                        double before_time) const {
  auto it = pair_retweet_times_.find(PairKey(root_author, user));
  if (it == pair_retweet_times_.end()) return 0;
  const auto& times = it->second;
  return static_cast<size_t>(
      std::lower_bound(times.begin(), times.end(), before_time) -
      times.begin());
}

std::vector<HashtagStats> SyntheticWorld::ComputeHashtagStats() const {
  std::vector<HashtagStats> stats(hashtags_.size());
  std::vector<std::unordered_set<NodeId>> authors(hashtags_.size());
  std::vector<std::unordered_set<NodeId>> all_users(hashtags_.size());
  std::vector<size_t> total_rts(hashtags_.size(), 0);
  std::vector<size_t> hateful(hashtags_.size(), 0);
  for (size_t i = 0; i < tweets_.size(); ++i) {
    const Tweet& tw = tweets_[i];
    HashtagStats& s = stats[tw.hashtag];
    ++s.tweets;
    if (tw.is_hateful) ++hateful[tw.hashtag];
    authors[tw.hashtag].insert(tw.author);
    all_users[tw.hashtag].insert(tw.author);
    total_rts[tw.hashtag] += cascades_[i].retweets.size();
    for (const RetweetEvent& rt : cascades_[i].retweets) {
      all_users[tw.hashtag].insert(rt.user);
    }
  }
  for (size_t h = 0; h < hashtags_.size(); ++h) {
    HashtagStats& s = stats[h];
    s.unique_authors = authors[h].size();
    s.users_all = all_users[h].size();
    s.avg_retweets =
        s.tweets > 0
            ? static_cast<double>(total_rts[h]) / static_cast<double>(s.tweets)
            : 0.0;
    s.pct_hate = s.tweets > 0 ? 100.0 * static_cast<double>(hateful[h]) /
                                    static_cast<double>(s.tweets)
                              : 0.0;
  }
  return stats;
}

double SyntheticWorld::UserHashtagHateRatio(NodeId u, size_t hashtag) const {
  size_t total = 0, hate = 0;
  for (const Tweet& tw : tweets_) {
    if (tw.author == u && tw.hashtag == hashtag) {
      ++total;
      if (tw.is_hateful) ++hate;
    }
  }
  for (const HistoryTweet& ht : histories_[u]) {
    if (ht.hashtag == hashtag) {
      ++total;
      if (ht.is_hateful) ++hate;
    }
  }
  if (total == 0) return 0.0;
  return static_cast<double>(hate) / static_cast<double>(total);
}

ReplyStats SyntheticWorld::ComputeReplyStats(bool hateful_roots) const {
  ReplyStats stats;
  size_t n_roots = 0, n_replies = 0, n_hateful = 0, n_counter = 0;
  for (size_t i = 0; i < tweets_.size(); ++i) {
    if (tweets_[i].is_hateful != hateful_roots) continue;
    ++n_roots;
    if (i >= replies_.size()) continue;
    for (const ReplyEvent& r : replies_[i]) {
      ++n_replies;
      n_hateful += r.is_hateful;
      n_counter += r.counter_speech;
    }
  }
  if (n_roots > 0) {
    stats.replies_per_tweet =
        static_cast<double>(n_replies) / static_cast<double>(n_roots);
  }
  if (n_replies > 0) {
    stats.hateful_reply_fraction =
        static_cast<double>(n_hateful) / static_cast<double>(n_replies);
    stats.counter_speech_fraction =
        static_cast<double>(n_counter) / static_cast<double>(n_replies);
  }
  return stats;
}

std::vector<DiffusionCurvePoint> SyntheticWorld::DiffusionCurves(
    bool hateful, const std::vector<double>& minutes_grid) const {
  std::vector<DiffusionCurvePoint> out(minutes_grid.size());
  for (size_t g = 0; g < minutes_grid.size(); ++g) {
    out[g].minutes = minutes_grid[g];
  }
  size_t n_cascades = 0;
  for (size_t i = 0; i < tweets_.size(); ++i) {
    if (tweets_[i].is_hateful != hateful) continue;
    ++n_cascades;
    const double t0 = tweets_[i].time;
    const auto& rts = cascades_[i].retweets;

    // Incrementally extend participant / susceptible sets along the grid.
    // Susceptible at time t = exposed (follower of a participant) but not
    // itself a participant yet — the Figure 1(b) quantity.
    std::unordered_set<NodeId> member{tweets_[i].author};
    std::unordered_set<NodeId> exposed;
    for (NodeId f : network_.Followers(tweets_[i].author)) {
      if (member.count(f) == 0) exposed.insert(f);
    }
    size_t rt_idx = 0;
    for (size_t g = 0; g < minutes_grid.size(); ++g) {
      const double t_cut = t0 + minutes_grid[g] / 60.0;
      while (rt_idx < rts.size() && rts[rt_idx].time <= t_cut) {
        const NodeId r = rts[rt_idx].user;
        member.insert(r);
        exposed.erase(r);
        for (NodeId f : network_.Followers(r)) {
          if (member.count(f) == 0) exposed.insert(f);
        }
        ++rt_idx;
      }
      out[g].mean_retweets += static_cast<double>(rt_idx);
      out[g].mean_susceptible += static_cast<double>(exposed.size());
    }
  }
  if (n_cascades > 0) {
    for (auto& p : out) {
      p.mean_retweets /= static_cast<double>(n_cascades);
      p.mean_susceptible /= static_cast<double>(n_cascades);
    }
  }
  return out;
}


void SyntheticWorld::BuildDerivedIndices() {
  const size_t n_days =
      static_cast<size_t>(std::ceil(config_.horizon_days));
  // ---- Daily trending ranking ------------------------------------------------
  {
    Matrix volume(n_days, hashtags_.size(), 0.0);
    for (const Tweet& tw : tweets_) {
      size_t day = static_cast<size_t>(tw.time / 24.0);
      if (day >= n_days) day = n_days - 1;
      volume(day, tw.hashtag) += 1.0;
    }
    daily_ranking_.resize(n_days);
    for (size_t d = 0; d < n_days; ++d) {
      auto& ranking = daily_ranking_[d];
      ranking.resize(hashtags_.size());
      for (size_t h = 0; h < ranking.size(); ++h) ranking[h] = h;
      std::sort(ranking.begin(), ranking.end(), [&](size_t a, size_t b) {
        if (volume(d, a) != volume(d, b)) return volume(d, a) > volume(d, b);
        return a < b;
      });
    }
  }

  // ---- Pairwise retweet-history index -------------------------------------------
  for (size_t i = 0; i < cascades_.size(); ++i) {
    const NodeId author = tweets_[i].author;
    for (const RetweetEvent& rt : cascades_[i].retweets) {
      pair_retweet_times_[PairKey(author, rt.user)].push_back(rt.time);
    }
  }
  for (auto& [key, times] : pair_retweet_times_) {
    std::sort(times.begin(), times.end());
  }
}

SyntheticWorld SyntheticWorld::FromParts(
    WorldConfig config, std::vector<UserProfile> users,
    graph::InformationNetwork network, std::vector<HashtagInfo> hashtags,
    text::HateLexicon lexicon, NewsStream news, std::vector<Tweet> tweets,
    std::vector<Cascade> cascades,
    std::vector<std::vector<HistoryTweet>> histories,
    std::vector<std::vector<ReplyEvent>> replies) {
  SyntheticWorld world;
  world.config_ = config;
  world.users_ = std::move(users);
  world.network_ = std::move(network);
  world.hashtags_ = std::move(hashtags);
  world.lexicon_ = std::move(lexicon);
  world.news_ = std::move(news);
  world.tweets_ = std::move(tweets);
  world.cascades_ = std::move(cascades);
  world.histories_ = std::move(histories);
  world.replies_ = std::move(replies);
  world.replies_.resize(world.tweets_.size());
  world.BuildDerivedIndices();
  return world;
}

}  // namespace retina::datagen
