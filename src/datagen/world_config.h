// Configuration of the synthetic world generator, including the Table II
// calibration targets (the paper's per-hashtag dataset statistics).

#ifndef RETINA_DATAGEN_WORLD_CONFIG_H_
#define RETINA_DATAGEN_WORLD_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "datagen/types.h"
#include "graph/generators.h"

namespace retina::datagen {

/// Knobs of the synthetic Twitter + news world.
///
/// Defaults reproduce the paper's dataset shape at a configurable scale:
/// `scale` multiplies each hashtag's Table II tweet count, so scale=1.0
/// yields ~31k root tweets as in the paper; the test suite uses much
/// smaller scales.
struct WorldConfig {
  /// Multiplier on per-hashtag Table II tweet counts.
  double scale = 0.25;

  /// Total users in the network (the paper's crawl reaches 41.1M network
  /// users; we keep the modeled population at the "users engaged" scale).
  size_t num_users = 6000;

  /// Number of latent discussion themes shared by hashtags/news/users.
  size_t num_topics = 10;

  /// Observation window (the paper spans 2020-02-03..04-14 = 71 days).
  double horizon_days = 71.0;

  /// Fraction of users who are hate-prone (Matthew et al. [5]: a small
  /// fraction of users generates most hate).
  double hater_fraction = 0.08;

  /// History tweets generated per user (the features use the most recent
  /// 30; we generate a few more so history-size ablations have headroom).
  size_t history_length = 36;

  /// Words per synthetic topic vocabulary, and shared general vocabulary.
  size_t words_per_topic = 120;
  size_t general_words = 400;

  /// Hate lexicon dimensions (paper: 209 terms).
  size_t lexicon_terms = 209;
  size_t lexicon_slurs = 160;

  /// News volume: expected headlines per day across all topics at calm
  /// intensity (bursts multiply this).
  double news_per_day = 140.0;

  /// Mean exogenous event bursts per topic over the horizon.
  double bursts_per_topic = 3.0;

  /// Cascade simulation --------------------------------------------------
  /// Base probability that a follower retweets (before alignment,
  /// hate/echo and exogenous modulation); per-hashtag values are
  /// calibrated around this to hit the Table II avg-retweet targets.
  double base_retweet_prob = 0.05;
  /// Maximum cascade depth simulated (paper crawls followers to depth 3).
  int max_cascade_depth = 3;
  /// Fraction of retweets injected from outside the follower paths
  /// ("beyond organic diffusion").
  double non_organic_fraction = 0.05;
  /// Retweet-delay time constant for hateful roots (hours). Hate spreads
  /// fast then stalls (Figure 1).
  double hate_delay_tau = 4.0;
  /// Retweet-delay time constant for non-hate roots (hours): slower but
  /// sustained.
  double nonhate_delay_tau = 18.0;
  /// Multiplier on retweet probability when a hateful tweet meets a
  /// hate-prone follower in the same echo community.
  double echo_boost = 6.0;
  /// Multiplier when a hateful tweet meets an ordinary follower
  /// (suppression outside the chamber).
  double hate_suppress = 0.35;
  /// Overall virality multiplier of hateful roots (Figure 1(a): hateful
  /// tweets accumulate significantly more retweets).
  double hate_virality = 2.2;
  /// "Organized spreaders": probability that each member of the author's
  /// echo community retweets a hateful root regardless of follow edges
  /// (the paper's organized early dissemination of hate).
  double organized_spreader_rate = 0.45;
  /// Strength of the exogenous (news-intensity) modulation of retweeting
  /// and tweeting, in [0, ~3]. 0 disconnects news from behaviour.
  double exo_coupling = 1.5;

  /// Reply threads (Section IX-A extension) ------------------------------
  /// Expected replies per retweet-equivalent of engagement.
  double reply_rate = 0.25;
  /// P(counter-speech | reply to a hateful root, ordinary replier).
  double counter_speech_rate = 0.55;
  /// P(supportive hate | reply to a hateful root, hate-prone replier).
  double supportive_hate_rate = 0.7;
  /// P(hateful harassment | reply to a non-hate root, hate-prone replier).
  double harassment_rate = 0.25;

  /// Network generation.
  graph::NetworkGenOptions network;

  /// Label noise of the machine annotator relative to gold labels,
  /// applied when hatedetect machine-labels the corpus; matches the
  /// imperfect Davidson-model annotation the paper trains on.
  double machine_label_flip_rate = 0.08;
};

/// The 34 hashtags of Table II with their published statistics; the world
/// generator uses these (scaled) as calibration targets. Topics group
/// related tags (e.g. the Jamia-protest tags share a theme) so the
/// topic-affinity structure of Figure 2/3 is preserved.
std::vector<HashtagInfo> PaperHashtagTable(size_t num_topics);

}  // namespace retina::datagen

#endif  // RETINA_DATAGEN_WORLD_CONFIG_H_
