#include "datagen/news.h"

#include <algorithm>
#include <cmath>

namespace retina::datagen {

NewsStream NewsStream::FromParts(std::vector<NewsArticle> articles,
                                 Matrix intensity, double horizon_days) {
  NewsStream stream;
  stream.articles_ = std::move(articles);
  stream.intensity_ = std::move(intensity);
  stream.horizon_days_ = horizon_days;
  return stream;
}

double NewsStream::IntensityAt(size_t topic, double time_hours) const {
  if (intensity_.empty()) return 1.0;
  int day = static_cast<int>(time_hours / 24.0);
  day = std::clamp(day, 0, static_cast<int>(intensity_.cols()) - 1);
  return intensity_(topic, static_cast<size_t>(day));
}

std::vector<size_t> NewsStream::MostRecentBefore(double time_hours,
                                                 size_t k) const {
  // articles_ is sorted by time; find the first article at/after t.
  auto it = std::lower_bound(
      articles_.begin(), articles_.end(), time_hours,
      [](const NewsArticle& a, double t) { return a.time < t; });
  size_t end = static_cast<size_t>(it - articles_.begin());
  std::vector<size_t> out;
  out.reserve(std::min(k, end));
  while (out.size() < k && end > 0) {
    --end;
    out.push_back(end);
  }
  return out;
}

NewsStream GenerateNews(
    const WorldConfig& config,
    const std::vector<std::vector<std::string>>& topic_words,
    const std::vector<std::string>& general_words, Rng* rng) {
  const size_t num_topics = config.num_topics;
  const size_t num_days = static_cast<size_t>(std::ceil(config.horizon_days));

  NewsStream stream;
  stream.horizon_days_ = config.horizon_days;
  stream.intensity_ = Matrix(num_topics, num_days, 1.0);

  // Place exponentially decaying bursts per topic.
  for (size_t t = 0; t < num_topics; ++t) {
    const int n_bursts = rng->Poisson(config.bursts_per_topic);
    for (int b = 0; b < n_bursts; ++b) {
      const double start = rng->Uniform(0.0, config.horizon_days);
      const double magnitude = rng->Uniform(2.0, 8.0);
      const double decay_days = rng->Uniform(1.5, 5.0);
      for (size_t d = 0; d < num_days; ++d) {
        const double dt = static_cast<double>(d) - start;
        if (dt < 0.0) continue;
        stream.intensity_(t, d) += magnitude * std::exp(-dt / decay_days);
      }
    }
  }

  // Headline volume per (day, topic) follows intensity.
  const double per_topic_rate = config.news_per_day / static_cast<double>(num_topics);
  for (size_t d = 0; d < num_days; ++d) {
    for (size_t t = 0; t < num_topics; ++t) {
      const double rate = per_topic_rate * stream.intensity_(t, d);
      const int count = rng->Poisson(rate);
      for (int i = 0; i < count; ++i) {
        NewsArticle article;
        article.time = (static_cast<double>(d) + rng->Uniform()) * 24.0;
        article.topic = t;
        // Headline: 6-12 tokens, ~2/3 topical.
        const int len = 6 + static_cast<int>(rng->UniformInt(7));
        article.tokens.reserve(static_cast<size_t>(len));
        for (int w = 0; w < len; ++w) {
          if (rng->Uniform() < 0.65 && !topic_words[t].empty()) {
            article.tokens.push_back(
                topic_words[t][rng->UniformInt(topic_words[t].size())]);
          } else if (!general_words.empty()) {
            article.tokens.push_back(
                general_words[rng->UniformInt(general_words.size())]);
          }
        }
        stream.articles_.push_back(std::move(article));
      }
    }
  }
  std::sort(stream.articles_.begin(), stream.articles_.end(),
            [](const NewsArticle& a, const NewsArticle& b) {
              return a.time < b.time;
            });
  return stream;
}

}  // namespace retina::datagen
