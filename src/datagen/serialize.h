// CSV export / import of a SyntheticWorld.
//
// ExportWorldCsv writes the dataset the way a crawl release would ship it
// (one file per entity; the layout mirrors what the paper's public RETINA
// repository distributes):
//
//   manifest.csv   config fields needed to reconstruct accessors
//   users.csv      user_id, activity, account_age_days, echo_community,
//                  interests (;-joined), propensity (;-joined)
//   edges.csv      u, v   (v follows u)
//   hashtags.csv   tag, topic, targets
//   tweets.csv     id, author, hashtag, time, gold, machine, tokens
//   retweets.csv   tweet_id, user, time, organic
//   news.csv       time, topic, tokens
//   intensity.csv  topic x day matrix of the news-intensity process
//   histories.csv  user, time, topic, hateful, retweets, hashtag, tokens
//
// ImportWorldCsv reconstructs a SyntheticWorld that is accessor-for-
// accessor equivalent to the exported one (derived indices are rebuilt).

#ifndef RETINA_DATAGEN_SERIALIZE_H_
#define RETINA_DATAGEN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "datagen/world.h"

namespace retina::datagen {

/// Writes the world into `dir` (created if absent).
Status ExportWorldCsv(const SyntheticWorld& world, const std::string& dir);

/// Reads a world previously written by ExportWorldCsv.
Result<SyntheticWorld> ImportWorldCsv(const std::string& dir);

}  // namespace retina::datagen

#endif  // RETINA_DATAGEN_SERIALIZE_H_
