// SyntheticWorld — the generated stand-in for the paper's crawled dataset.
//
// Generate() draws, in order: a topical vocabulary and hate lexicon; a user
// population with topic interests, topic-conditional hate propensity and
// echo-chamber membership; the follower network; the news stream; per-user
// activity histories; root tweets calibrated to the Table II hashtag
// targets; and retweet cascades whose kinetics differ for hateful vs
// non-hate roots (fast-then-stall vs slow-but-sustained, Figure 1).
//
// All downstream components (feature extraction, RETINA, baselines,
// benches) consume only this class's accessors, so swapping in a real
// dataset would mean re-implementing this interface over parsed crawl
// files.

#ifndef RETINA_DATAGEN_WORLD_H_
#define RETINA_DATAGEN_WORLD_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "datagen/news.h"
#include "datagen/types.h"
#include "datagen/world_config.h"
#include "graph/information_network.h"
#include "text/hate_lexicon.h"

namespace retina::datagen {

/// Realized per-hashtag statistics (the measured analogue of Table II).
struct HashtagStats {
  size_t tweets = 0;
  double avg_retweets = 0.0;
  size_t unique_authors = 0;
  size_t users_all = 0;  ///< unique users tweeting or retweeting the tag
  double pct_hate = 0.0;
};

/// Aggregate statistics of the reply channel, split by root hatefulness.
struct ReplyStats {
  double replies_per_tweet = 0.0;
  double hateful_reply_fraction = 0.0;
  double counter_speech_fraction = 0.0;
};

/// Point on a diffusion curve (Figure 1): minutes since root, mean value.
struct DiffusionCurvePoint {
  double minutes = 0.0;
  double mean_retweets = 0.0;
  double mean_susceptible = 0.0;
};

/// \brief The full synthetic dataset.
class SyntheticWorld {
 public:
  /// Generates a world. Deterministic in (config, seed).
  static SyntheticWorld Generate(const WorldConfig& config, uint64_t seed);

  /// Assembles a world from pre-built parts (the CSV importer's entry
  /// point). Derived indices (daily trending ranking, pairwise retweet
  /// history) are rebuilt from the parts.
  static SyntheticWorld FromParts(
      WorldConfig config, std::vector<UserProfile> users,
      graph::InformationNetwork network, std::vector<HashtagInfo> hashtags,
      text::HateLexicon lexicon, NewsStream news, std::vector<Tweet> tweets,
      std::vector<Cascade> cascades,
      std::vector<std::vector<HistoryTweet>> histories,
      std::vector<std::vector<ReplyEvent>> replies = {});

  const WorldConfig& config() const { return config_; }
  const std::vector<UserProfile>& users() const { return users_; }
  const graph::InformationNetwork& network() const { return network_; }
  const std::vector<HashtagInfo>& hashtags() const { return hashtags_; }
  const text::HateLexicon& lexicon() const { return lexicon_; }
  const NewsStream& news() const { return news_; }

  /// Root tweets sorted ascending by time; Tweet::id indexes this vector.
  const std::vector<Tweet>& tweets() const { return tweets_; }
  std::vector<Tweet>& mutable_tweets() { return tweets_; }

  /// Cascade i belongs to tweets()[i].
  const std::vector<Cascade>& cascades() const { return cascades_; }

  /// Reply thread of tweets()[i], sorted by time (Section IX-A channel).
  const std::vector<ReplyEvent>& Replies(size_t tweet_id) const {
    return replies_[tweet_id];
  }

  /// Activity history of user u, sorted ascending by time.
  const std::vector<HistoryTweet>& History(NodeId u) const {
    return histories_[u];
  }

  size_t NumUsers() const { return users_.size(); }
  size_t NumTopics() const { return config_.num_topics; }

  /// Binary trending-hashtag indicator for the day containing `time_hours`
  /// (Section IV-C): entry i is 1 if hashtag i is among the top
  /// `top_n` tags by that day's tweet volume. Padded/truncated to `dim`.
  Vec TrendingIndicator(double time_hours, size_t dim = 50,
                        size_t top_n = 10) const;

  /// Number of times `user` retweeted tweets authored by `root_author`
  /// strictly before `before_time` (peer feature of Section V-A).
  size_t PastRetweetCount(NodeId root_author, NodeId user,
                          double before_time) const;

  /// Realized statistics per hashtag, parallel to hashtags().
  std::vector<HashtagStats> ComputeHashtagStats() const;

  /// Ratio of hateful to total tweets by `u` on `hashtag` over the corpus
  /// and u's history; NaN-free: returns 0 when u never used the tag
  /// (Figure 3 cell value).
  double UserHashtagHateRatio(NodeId u, size_t hashtag) const;

  /// Reply-channel statistics over roots with the given hatefulness.
  ReplyStats ComputeReplyStats(bool hateful_roots) const;

  /// Average cascade-growth and susceptible-set curves over all cascades
  /// whose root is hateful (`hateful=true`) or non-hate, evaluated at
  /// `minutes_grid` offsets from the root time (Figure 1 series).
  std::vector<DiffusionCurvePoint> DiffusionCurves(
      bool hateful, const std::vector<double>& minutes_grid) const;

 private:
  SyntheticWorld() = default;

  // Rebuilds daily_ranking_ and pair_retweet_times_ from tweets/cascades.
  void BuildDerivedIndices();

  WorldConfig config_;
  std::vector<UserProfile> users_;
  graph::InformationNetwork network_;
  std::vector<HashtagInfo> hashtags_;
  text::HateLexicon lexicon_{{}, {}};
  NewsStream news_;
  std::vector<Tweet> tweets_;
  std::vector<Cascade> cascades_;
  std::vector<std::vector<ReplyEvent>> replies_;
  std::vector<std::vector<HistoryTweet>> histories_;

  // Trending: per day, sorted hashtag indices by volume (descending).
  std::vector<std::vector<size_t>> daily_ranking_;

  // (author, retweeter) -> sorted retweet times, for PastRetweetCount.
  std::unordered_map<uint64_t, std::vector<double>> pair_retweet_times_;
};

}  // namespace retina::datagen

#endif  // RETINA_DATAGEN_WORLD_H_
