// Core data records of the synthetic Twitter world.
//
// These mirror what the paper crawls: root tweets with hashtags and
// timestamps, retweet cascades with per-retweet timestamps, user activity
// histories, and contemporary news headlines.

#ifndef RETINA_DATAGEN_TYPES_H_
#define RETINA_DATAGEN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/vec.h"
#include "graph/information_network.h"

namespace retina::datagen {

using graph::NodeId;

/// A root tweet (content the diffusion models predict spread for).
struct Tweet {
  size_t id = 0;
  NodeId author = 0;
  /// Index into SyntheticWorld::hashtags().
  size_t hashtag = 0;
  /// Hours since the start of the observation window.
  double time = 0.0;
  /// Ground-truth ("gold") hate label.
  bool is_hateful = false;
  /// Label assigned by the machine annotator (hatedetect); initialized to
  /// the gold label until AnnotatePipeline overwrites it.
  bool machine_hateful = false;
  /// Tokenized text (lowercased; includes the #hashtag token).
  std::vector<std::string> tokens;
};

/// One retweet inside a cascade.
struct RetweetEvent {
  NodeId user = 0;
  /// Hours since the start of the observation window (>= root tweet time).
  double time = 0.0;
  /// True when the retweeter is a follower-path ("organic") spreader;
  /// false for promoted/search-driven spread (Section III, "Beyond organic
  /// diffusion").
  bool organic = true;
};

/// Retweet cascade of one root tweet, sorted by time.
struct Cascade {
  size_t root_tweet = 0;  ///< Tweet::id of the root.
  std::vector<RetweetEvent> retweets;
};

/// One reply inside a tweet's reply thread (the diffusion channel the
/// paper's Section IX-A names as unmodeled: threads mix supportive hate,
/// counter-speech and neutral comments).
struct ReplyEvent {
  NodeId user = 0;
  /// Hours since the start of the observation window.
  double time = 0.0;
  /// The reply itself is hateful (supportive hate or harassment).
  bool is_hateful = false;
  /// The reply pushes back against a hateful root (counter-speech).
  bool counter_speech = false;
};

/// A news headline (exogenous signal source).
struct NewsArticle {
  /// Hours since the start of the observation window.
  double time = 0.0;
  size_t topic = 0;
  std::vector<std::string> tokens;
};

/// One entry of a user's activity history H_{i,t}.
struct HistoryTweet {
  /// Hours since start of window (negative = before the window).
  double time = 0.0;
  size_t topic = 0;
  bool is_hateful = false;
  /// Retweets this history tweet received (feature: attention on hate).
  int retweets_received = 0;
  std::vector<std::string> tokens;
  /// Hashtag index used in this history tweet, or SIZE_MAX if none.
  size_t hashtag = SIZE_MAX;
};

/// Static per-user attributes drawn by the generator.
struct UserProfile {
  /// Topic-interest distribution (sums to 1).
  Vec topic_interests;
  /// Per-topic propensity to produce hate in [0, 1]; near-zero for
  /// ordinary users, concentrated on 1-2 topics for hate-prone users
  /// (topic-dependence of Figure 3).
  Vec hate_propensity;
  /// Echo-chamber community id (>= 0 for hate-prone users, -1 otherwise).
  int echo_community = -1;
  /// Relative tweeting rate.
  double activity = 1.0;
  /// Account age in days at the start of the window.
  double account_age_days = 365.0;
};

/// Per-hashtag generation targets + realized statistics (Table II analogue).
struct HashtagInfo {
  std::string tag;       ///< e.g. "#jamiaviolence"
  size_t topic = 0;      ///< theme index
  size_t target_tweets = 0;
  double target_avg_retweets = 0.0;
  double target_pct_hate = 0.0;  ///< in [0, 100]
};

}  // namespace retina::datagen

#endif  // RETINA_DATAGEN_TYPES_H_
