// Event-driven synthetic news stream (exogenous signal source).
//
// Stands in for the paper's news-please crawl (683k articles -> 319k
// filtered headlines). Each topic has a calm base intensity plus randomly
// placed exponentially decaying bursts ("events"); headline volume per day
// follows the intensity, and headline text shares the topical vocabulary
// with tweets — preserving the temporal-topical tweet/news correlation the
// exogenous-attention models consume.

#ifndef RETINA_DATAGEN_NEWS_H_
#define RETINA_DATAGEN_NEWS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/vec.h"
#include "datagen/types.h"
#include "datagen/world_config.h"

namespace retina::datagen {

/// \brief Generated news corpus with its underlying intensity process.
class NewsStream {
 public:
  /// Builds a stream from parts (CSV importer). Articles must be sorted
  /// ascending by time; `intensity` is topics x days.
  static NewsStream FromParts(std::vector<NewsArticle> articles,
                              Matrix intensity, double horizon_days);

  /// All headlines sorted ascending by time.
  const std::vector<NewsArticle>& articles() const { return articles_; }

  /// Relative news intensity (1.0 = calm) for `topic` at `time_hours`.
  double IntensityAt(size_t topic, double time_hours) const;

  /// Indices of the `k` most recent articles strictly before `time_hours`
  /// (most recent first). Fewer if the stream is younger than k.
  std::vector<size_t> MostRecentBefore(double time_hours, size_t k) const;

  /// topics x days intensity matrix.
  const Matrix& intensity() const { return intensity_; }

 private:
  friend NewsStream GenerateNews(
      const WorldConfig& config,
      const std::vector<std::vector<std::string>>& topic_words,
      const std::vector<std::string>& general_words, Rng* rng);

  std::vector<NewsArticle> articles_;
  Matrix intensity_;  // topics x days
  double horizon_days_ = 0.0;
};

/// Generates the news stream for the configured horizon.
NewsStream GenerateNews(
    const WorldConfig& config,
    const std::vector<std::vector<std::string>>& topic_words,
    const std::vector<std::string>& general_words, Rng* rng);

}  // namespace retina::datagen

#endif  // RETINA_DATAGEN_NEWS_H_
