#include "datagen/serialize.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <sys/stat.h>

#include "common/string_util.h"

namespace retina::datagen {

namespace {

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir failed: " + dir + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string Num(double v) {
  char buf[40];
  // 17 significant digits round-trip every IEEE-754 double exactly, so
  // export -> import preserves times and rates bit for bit.
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JoinTokens(const std::vector<std::string>& tokens) {
  return Join(tokens, " ");
}

std::string JoinVec(const Vec& v) {
  std::string out;
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ';';
    out += Num(v[i]);
  }
  return out;
}

Vec ParseVec(const std::string& s) {
  Vec out;
  for (const std::string& part : Split(s, ';')) {
    if (!part.empty()) out.push_back(std::atof(part.c_str()));
  }
  return out;
}

class CsvWriter {
 public:
  CsvWriter(const std::string& path) : f_(path), path_(path) {}

  bool ok() const { return static_cast<bool>(f_); }

  void Row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) f_ << ',';
      f_ << cells[i];
    }
    f_ << '\n';
  }

  Status Close() {
    f_.flush();
    return f_.good() ? Status::OK()
                     : Status::IOError("write failed: " + path_);
  }

 private:
  std::ofstream f_;
  std::string path_;
};

// Reads a simple CSV (no quoting — our writers never emit commas inside
// cells; tokens are space-joined). Skips the header row.
Result<std::vector<std::vector<std::string>>> ReadCsv(
    const std::string& path, size_t min_cells) {
  std::ifstream f(path);
  if (!f) return Status::IOError("cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  bool header = true;
  while (std::getline(f, line)) {
    if (header) {
      header = false;
      continue;
    }
    if (line.empty()) continue;
    std::vector<std::string> cells = Split(line, ',');
    if (cells.size() < min_cells) {
      return Status::IOError("malformed row in " + path + ": " + line);
    }
    rows.push_back(std::move(cells));
  }
  return rows;
}

}  // namespace

Status ExportWorldCsv(const SyntheticWorld& world, const std::string& dir) {
  RETINA_RETURN_NOT_OK(EnsureDir(dir));
  const WorldConfig& config = world.config();

  {
    CsvWriter w(dir + "/manifest.csv");
    if (!w.ok()) return Status::IOError("cannot write manifest");
    w.Row({"key", "value"});
    w.Row({"num_users", std::to_string(config.num_users)});
    w.Row({"num_topics", std::to_string(config.num_topics)});
    w.Row({"horizon_days", Num(config.horizon_days)});
    w.Row({"history_length", std::to_string(config.history_length)});
    w.Row({"scale", Num(config.scale)});
    w.Row({"lexicon_terms", std::to_string(config.lexicon_terms)});
    w.Row({"lexicon_slurs", std::to_string(config.lexicon_slurs)});
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/users.csv");
    w.Row({"user", "activity", "account_age_days", "echo_community",
           "interests", "propensity"});
    for (size_t u = 0; u < world.NumUsers(); ++u) {
      const UserProfile& p = world.users()[u];
      w.Row({std::to_string(u), Num(p.activity), Num(p.account_age_days),
             std::to_string(p.echo_community), JoinVec(p.topic_interests),
             JoinVec(p.hate_propensity)});
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/edges.csv");
    w.Row({"u", "v"});
    for (size_t u = 0; u < world.NumUsers(); ++u) {
      for (NodeId v : world.network().Followers(static_cast<NodeId>(u))) {
        w.Row({std::to_string(u), std::to_string(v)});
      }
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/hashtags.csv");
    w.Row({"tag", "topic", "target_tweets", "target_avg_rt",
           "target_pct_hate"});
    for (const HashtagInfo& h : world.hashtags()) {
      w.Row({h.tag, std::to_string(h.topic),
             std::to_string(h.target_tweets), Num(h.target_avg_retweets),
             Num(h.target_pct_hate)});
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/tweets.csv");
    w.Row({"id", "author", "hashtag", "time", "gold", "machine", "tokens"});
    for (const Tweet& t : world.tweets()) {
      w.Row({std::to_string(t.id), std::to_string(t.author),
             std::to_string(t.hashtag), Num(t.time),
             std::to_string(t.is_hateful ? 1 : 0),
             std::to_string(t.machine_hateful ? 1 : 0),
             JoinTokens(t.tokens)});
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/retweets.csv");
    w.Row({"tweet_id", "user", "time", "organic"});
    for (size_t i = 0; i < world.cascades().size(); ++i) {
      for (const RetweetEvent& rt : world.cascades()[i].retweets) {
        w.Row({std::to_string(i), std::to_string(rt.user), Num(rt.time),
               std::to_string(rt.organic ? 1 : 0)});
      }
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/replies.csv");
    w.Row({"tweet_id", "user", "time", "hateful", "counter"});
    for (size_t i = 0; i < world.tweets().size(); ++i) {
      for (const ReplyEvent& r : world.Replies(i)) {
        w.Row({std::to_string(i), std::to_string(r.user), Num(r.time),
               std::to_string(r.is_hateful ? 1 : 0),
               std::to_string(r.counter_speech ? 1 : 0)});
      }
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/news.csv");
    w.Row({"time", "topic", "tokens"});
    for (const NewsArticle& a : world.news().articles()) {
      w.Row({Num(a.time), std::to_string(a.topic), JoinTokens(a.tokens)});
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/intensity.csv");
    w.Row({"topic", "day", "intensity"});
    const Matrix& intensity = world.news().intensity();
    for (size_t t = 0; t < intensity.rows(); ++t) {
      for (size_t d = 0; d < intensity.cols(); ++d) {
        w.Row({std::to_string(t), std::to_string(d),
               Num(intensity(t, d))});
      }
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  {
    CsvWriter w(dir + "/histories.csv");
    w.Row({"user", "time", "topic", "hateful", "retweets", "hashtag",
           "tokens"});
    for (size_t u = 0; u < world.NumUsers(); ++u) {
      for (const HistoryTweet& ht : world.History(static_cast<NodeId>(u))) {
        w.Row({std::to_string(u), Num(ht.time), std::to_string(ht.topic),
               std::to_string(ht.is_hateful ? 1 : 0),
               std::to_string(ht.retweets_received),
               ht.hashtag == SIZE_MAX ? "-1" : std::to_string(ht.hashtag),
               JoinTokens(ht.tokens)});
      }
    }
    RETINA_RETURN_NOT_OK(w.Close());
  }
  return Status::OK();
}

Result<SyntheticWorld> ImportWorldCsv(const std::string& dir) {
  WorldConfig config;
  config.num_users = 0;  // must come from the manifest
  {
    auto rows = ReadCsv(dir + "/manifest.csv", 2);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      const std::string& key = row[0];
      const std::string& value = row[1];
      if (key == "num_users") {
        config.num_users = static_cast<size_t>(std::atoll(value.c_str()));
      } else if (key == "num_topics") {
        config.num_topics = static_cast<size_t>(std::atoll(value.c_str()));
      } else if (key == "horizon_days") {
        config.horizon_days = std::atof(value.c_str());
      } else if (key == "history_length") {
        config.history_length =
            static_cast<size_t>(std::atoll(value.c_str()));
      } else if (key == "scale") {
        config.scale = std::atof(value.c_str());
      } else if (key == "lexicon_terms") {
        config.lexicon_terms =
            static_cast<size_t>(std::atoll(value.c_str()));
      } else if (key == "lexicon_slurs") {
        config.lexicon_slurs =
            static_cast<size_t>(std::atoll(value.c_str()));
      }
    }
  }
  if (config.num_users == 0) {
    return Status::IOError("manifest missing num_users");
  }

  std::vector<UserProfile> users(config.num_users);
  {
    auto rows = ReadCsv(dir + "/users.csv", 6);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      const size_t u = static_cast<size_t>(std::atoll(row[0].c_str()));
      if (u >= users.size()) return Status::IOError("user id out of range");
      users[u].activity = std::atof(row[1].c_str());
      users[u].account_age_days = std::atof(row[2].c_str());
      users[u].echo_community = std::atoi(row[3].c_str());
      users[u].topic_interests = ParseVec(row[4]);
      users[u].hate_propensity = ParseVec(row[5]);
    }
  }

  graph::InformationNetwork network;
  {
    auto rows = ReadCsv(dir + "/edges.csv", 2);
    if (!rows.ok()) return rows.status();
    std::vector<std::pair<NodeId, NodeId>> edges;
    edges.reserve(rows.ValueOrDie().size());
    for (const auto& row : rows.ValueOrDie()) {
      edges.emplace_back(
          static_cast<NodeId>(std::atoll(row[0].c_str())),
          static_cast<NodeId>(std::atoll(row[1].c_str())));
    }
    auto net = graph::InformationNetwork::FromEdges(config.num_users, edges);
    if (!net.ok()) return net.status();
    network = std::move(net).ValueOrDie();
  }

  std::vector<HashtagInfo> hashtags;
  {
    auto rows = ReadCsv(dir + "/hashtags.csv", 5);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      HashtagInfo h;
      h.tag = row[0];
      h.topic = static_cast<size_t>(std::atoll(row[1].c_str()));
      h.target_tweets = static_cast<size_t>(std::atoll(row[2].c_str()));
      h.target_avg_retweets = std::atof(row[3].c_str());
      h.target_pct_hate = std::atof(row[4].c_str());
      hashtags.push_back(std::move(h));
    }
  }

  std::vector<Tweet> tweets;
  {
    auto rows = ReadCsv(dir + "/tweets.csv", 7);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      Tweet t;
      t.id = static_cast<size_t>(std::atoll(row[0].c_str()));
      t.author = static_cast<NodeId>(std::atoll(row[1].c_str()));
      t.hashtag = static_cast<size_t>(std::atoll(row[2].c_str()));
      t.time = std::atof(row[3].c_str());
      t.is_hateful = row[4] == "1";
      t.machine_hateful = row[5] == "1";
      t.tokens = SplitWhitespace(row[6]);
      tweets.push_back(std::move(t));
    }
  }

  std::vector<Cascade> cascades(tweets.size());
  for (size_t i = 0; i < cascades.size(); ++i) cascades[i].root_tweet = i;
  {
    auto rows = ReadCsv(dir + "/retweets.csv", 4);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      const size_t id = static_cast<size_t>(std::atoll(row[0].c_str()));
      if (id >= cascades.size()) {
        return Status::IOError("retweet references unknown tweet");
      }
      RetweetEvent rt;
      rt.user = static_cast<NodeId>(std::atoll(row[1].c_str()));
      rt.time = std::atof(row[2].c_str());
      rt.organic = row[3] == "1";
      cascades[id].retweets.push_back(rt);
    }
  }

  std::vector<std::vector<ReplyEvent>> replies(tweets.size());
  {
    auto rows = ReadCsv(dir + "/replies.csv", 5);
    // Older exports may lack the file; treat absence as no replies.
    if (rows.ok()) {
      for (const auto& row : rows.ValueOrDie()) {
        const size_t id = static_cast<size_t>(std::atoll(row[0].c_str()));
        if (id >= replies.size()) {
          return Status::IOError("reply references unknown tweet");
        }
        ReplyEvent r;
        r.user = static_cast<NodeId>(std::atoll(row[1].c_str()));
        r.time = std::atof(row[2].c_str());
        r.is_hateful = row[3] == "1";
        r.counter_speech = row[4] == "1";
        replies[id].push_back(r);
      }
    }
  }

  std::vector<NewsArticle> articles;
  {
    auto rows = ReadCsv(dir + "/news.csv", 3);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      NewsArticle a;
      a.time = std::atof(row[0].c_str());
      a.topic = static_cast<size_t>(std::atoll(row[1].c_str()));
      a.tokens = SplitWhitespace(row[2]);
      articles.push_back(std::move(a));
    }
  }
  Matrix intensity(config.num_topics,
                   static_cast<size_t>(std::ceil(config.horizon_days)), 1.0);
  {
    auto rows = ReadCsv(dir + "/intensity.csv", 3);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      const size_t t = static_cast<size_t>(std::atoll(row[0].c_str()));
      const size_t d = static_cast<size_t>(std::atoll(row[1].c_str()));
      if (t < intensity.rows() && d < intensity.cols()) {
        intensity(t, d) = std::atof(row[2].c_str());
      }
    }
  }

  std::vector<std::vector<HistoryTweet>> histories(config.num_users);
  {
    auto rows = ReadCsv(dir + "/histories.csv", 7);
    if (!rows.ok()) return rows.status();
    for (const auto& row : rows.ValueOrDie()) {
      const size_t u = static_cast<size_t>(std::atoll(row[0].c_str()));
      if (u >= histories.size()) {
        return Status::IOError("history references unknown user");
      }
      HistoryTweet ht;
      ht.time = std::atof(row[1].c_str());
      ht.topic = static_cast<size_t>(std::atoll(row[2].c_str()));
      ht.is_hateful = row[3] == "1";
      ht.retweets_received = std::atoi(row[4].c_str());
      const long long tag = std::atoll(row[5].c_str());
      ht.hashtag = tag < 0 ? SIZE_MAX : static_cast<size_t>(tag);
      ht.tokens = SplitWhitespace(row[6]);
      histories[u].push_back(std::move(ht));
    }
  }

  return SyntheticWorld::FromParts(
      config, std::move(users), std::move(network), std::move(hashtags),
      text::MakeSyntheticLexicon(config.lexicon_terms, config.lexicon_slurs),
      NewsStream::FromParts(std::move(articles), std::move(intensity),
                            config.horizon_days),
      std::move(tweets), std::move(cascades), std::move(histories),
      std::move(replies));
}

}  // namespace retina::datagen
