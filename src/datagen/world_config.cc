#include "datagen/world_config.h"

namespace retina::datagen {

std::vector<HashtagInfo> PaperHashtagTable(size_t num_topics) {
  // (tag, theme, tweets, avg retweets, % hateful) from Table II.
  // Themes: 0 Jamia/CAA protests, 1 Delhi riots, 2 COVID-19, 3 national
  // politics, 4 media criticism, 5 Kashmir/misc civic, 6 economy,
  // 7 judiciary, 8 communal narratives, 9 welfare/positivity.
  struct Row {
    const char* tag;
    size_t theme;
    size_t tweets;
    double avg_rt;
    double pct_hate;
  };
  static const Row kRows[] = {
      {"#jamiaviolence", 0, 950, 15.45, 3.78},
      {"#MigrantsOnTheRoad", 6, 872, 6.69, 8.20},
      {"#timetosackvadras", 3, 280, 8.19, 1.30},
      {"#jamiaunderattack", 0, 263, 5.80, 6.06},
      {"#IndiaBoycottsNPR", 3, 570, 7.87, 0.80},
      {"#ZeeNewsBanKaro", 4, 919, 9.58, 7.01},
      {"#SaluteCoronaWarriors", 9, 104, 5.65, 0.00},
      {"#Demonetisation", 6, 1696, 3.46, 0.06},
      {"#ChineseVirus", 2, 8, 0.25, 0.50},
      {"#IslamoPhobicIndianMedia", 4, 4307, 15.46, 8.42},
      {"#delhiriots2020", 1, 1453, 12.23, 6.80},
      {"#Seva4Society", 9, 1087, 13.24, 1.53},
      {"#PMCaresFunds", 9, 1172, 7.61, 0.80},
      {"#COVID_19", 2, 971, 6.38, 1.96},
      {"#Hindus_Under_Attack", 8, 382, 7.10, 10.10},
      {"#WarisPathan", 8, 989, 9.23, 12.07},
      {"#NorthDelhiRiots", 1, 3418, 2.89, 0.08},
      {"#UmarKhalid", 0, 887, 3.82, 0.10},
      {"#lockdownextension", 2, 107, 1.85, 0.00},
      {"#JamiaCCTV", 0, 1045, 12.07, 5.66},
      {"#TrumpVisitIndia", 3, 339, 8.47, 2.60},
      {"#PutNationOverPublicity", 3, 555, 13.24, 5.71},
      {"#DelhiExodus", 1, 542, 9.66, 7.61},
      {"#DelhiElectionResults", 3, 843, 7.56, 3.20},
      {"#amitshahmustresign", 3, 959, 5.01, 9.94},
      {"#PMPanuti", 3, 1346, 4.06, 0.02},
      {"#Restore4GinKashmir", 5, 949, 3.94, 2.84},
      {"#DelhiViolance", 1, 1121, 9.004, 7.37},
      {"#StopNPR", 3, 82, 10.23, 0.00},
      {"#1Crore4DelhiHindu", 8, 889, 11.62, 0.99},
      {"#NirbhayaVerdict", 7, 649, 7.61, 4.67},
      {"#NizamuddinMarkaz", 8, 1124, 8.24, 7.85},
      {"#90daysofshaheenbagh", 0, 226, 5.25, 12.04},
      {"#HinduLivesMatter", 8, 392, 4.82, 0.12},
  };

  std::vector<HashtagInfo> out;
  out.reserve(std::size(kRows));
  for (const Row& r : kRows) {
    HashtagInfo info;
    info.tag = r.tag;
    info.topic = r.theme % num_topics;
    info.target_tweets = r.tweets;
    info.target_avg_retweets = r.avg_rt;
    info.target_pct_hate = r.pct_hate;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace retina::datagen
