// Trainable parameter: a dense value matrix with a matching gradient
// accumulator. Layers register their Params, by name, in the owning
// model's ParamRegistry (see nn/param_registry.h); optimizers, Glorot
// init, gradient zeroing and checkpointing all operate on the registry.

#ifndef RETINA_NN_PARAM_H_
#define RETINA_NN_PARAM_H_

#include <cmath>

#include "common/rng.h"
#include "common/vec.h"

namespace retina::nn {

/// \brief Value + accumulated gradient for one tensor of weights.
struct Param {
  Matrix value;
  Matrix grad;

  Param() = default;
  Param(size_t rows, size_t cols) : value(rows, cols), grad(rows, cols) {}

  /// Glorot-uniform initialization.
  void InitGlorot(Rng* rng) {
    const double limit =
        std::sqrt(6.0 / static_cast<double>(value.rows() + value.cols()));
    for (double& v : value.data()) v = rng->Uniform(-limit, limit);
  }

  void ZeroGrad() { grad.Fill(0.0); }
};

}  // namespace retina::nn

#endif  // RETINA_NN_PARAM_H_
