// Recurrent-cell family behind dynamic RETINA.
//
// The paper's dynamic head uses a GRU but reports having tried a simple
// RNN (worse) and an LSTM (no gain) — Section V-B. All three are available
// behind one interface so the ablation bench can reproduce that comparison.
//
// A cell maps (input, state) -> state. The observable output is the first
// hidden_dim() entries of the state vector (for the LSTM the remainder is
// the cell state c).

#ifndef RETINA_NN_RECURRENT_H_
#define RETINA_NN_RECURRENT_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/gru.h"
#include "nn/param.h"
#include "nn/param_registry.h"

namespace retina::nn {

/// Per-step cache for RecurrentCell::Backward. `aux` slots are
/// cell-specific (gate activations etc.).
struct RecCache {
  Vec x;
  Vec state_prev;
  std::vector<Vec> aux;
};

/// \brief Common interface over GRU / LSTM / simple RNN cells.
class RecurrentCell {
 public:
  virtual ~RecurrentCell() = default;

  /// Size of the full recurrent state.
  virtual size_t state_dim() const = 0;
  /// Size of the observable output (prefix of the state).
  virtual size_t hidden_dim() const = 0;
  virtual size_t in_dim() const = 0;

  /// One step: returns the new state; fills `cache` when non-null.
  virtual Vec Forward(const Vec& x, const Vec& state,
                      RecCache* cache) const = 0;

  /// Backward through one step given d(new state); accumulates parameter
  /// gradients and emits input / previous-state gradients.
  virtual void Backward(const RecCache& cache, const Vec& dstate, Vec* dx,
                        Vec* dstate_prev) = 0;

  /// Registers the cell's parameters under `scope` (deterministic order;
  /// weight matrices Glorot, biases kKeep).
  virtual void RegisterParams(ParamRegistry* registry,
                              const std::string& scope) = 0;

  /// Deep copy (values and gradient accumulators). Data-parallel training
  /// clones one replica per work chunk and reduces the replica gradients
  /// back in chunk order.
  virtual std::unique_ptr<RecurrentCell> Clone() const = 0;
};

enum class RecurrentKind { kGru, kLstm, kSimpleRnn };

const char* RecurrentKindName(RecurrentKind kind);

/// \brief Vanilla RNN: h' = tanh(W x + U h + b).
class SimpleRnnCell : public RecurrentCell {
 public:
  SimpleRnnCell(size_t in_dim, size_t hidden_dim);

  size_t state_dim() const override { return hidden_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }
  size_t in_dim() const override { return in_dim_; }
  Vec Forward(const Vec& x, const Vec& state,
              RecCache* cache) const override;
  void Backward(const RecCache& cache, const Vec& dstate, Vec* dx,
                Vec* dstate_prev) override;
  void RegisterParams(ParamRegistry* registry,
                      const std::string& scope) override {
    registry->Register(scope + "/W", &W_, ParamInit::kGlorot);
    registry->Register(scope + "/U", &U_, ParamInit::kGlorot);
    registry->Register(scope + "/b", &b_);
  }
  std::unique_ptr<RecurrentCell> Clone() const override {
    return std::make_unique<SimpleRnnCell>(*this);
  }

 private:
  size_t in_dim_, hidden_dim_;
  Param W_, U_, b_;
};

/// \brief LSTM cell; state = [h, c].
class LstmCell : public RecurrentCell {
 public:
  LstmCell(size_t in_dim, size_t hidden_dim);

  size_t state_dim() const override { return 2 * hidden_dim_; }
  size_t hidden_dim() const override { return hidden_dim_; }
  size_t in_dim() const override { return in_dim_; }
  Vec Forward(const Vec& x, const Vec& state,
              RecCache* cache) const override;
  void Backward(const RecCache& cache, const Vec& dstate, Vec* dx,
                Vec* dstate_prev) override;
  void RegisterParams(ParamRegistry* registry,
                      const std::string& scope) override;
  std::unique_ptr<RecurrentCell> Clone() const override {
    return std::make_unique<LstmCell>(*this);
  }

 private:
  // Gate pre-activation a_g = Wg x + Ug h + bg for g in {i, f, o, c}.
  Vec Gate(const Param& W, const Param& U, const Param& b, const Vec& x,
           const Vec& h) const;

  size_t in_dim_, hidden_dim_;
  Param Wi_, Ui_, bi_;
  Param Wf_, Uf_, bf_;
  Param Wo_, Uo_, bo_;
  Param Wc_, Uc_, bc_;
};

/// \brief Adapter exposing GruCell behind the RecurrentCell interface.
class GruRecurrentCell : public RecurrentCell {
 public:
  GruRecurrentCell(size_t in_dim, size_t hidden_dim)
      : cell_(in_dim, hidden_dim) {}

  size_t state_dim() const override { return cell_.hidden_dim(); }
  size_t hidden_dim() const override { return cell_.hidden_dim(); }
  size_t in_dim() const override { return cell_.in_dim(); }
  Vec Forward(const Vec& x, const Vec& state,
              RecCache* cache) const override;
  void Backward(const RecCache& cache, const Vec& dstate, Vec* dx,
                Vec* dstate_prev) override;
  void RegisterParams(ParamRegistry* registry,
                      const std::string& scope) override {
    cell_.RegisterParams(registry, scope);
  }
  std::unique_ptr<RecurrentCell> Clone() const override {
    return std::make_unique<GruRecurrentCell>(*this);
  }

 private:
  GruCell cell_;
};

/// Factory over the three kinds.
std::unique_ptr<RecurrentCell> MakeRecurrentCell(RecurrentKind kind,
                                                 size_t in_dim,
                                                 size_t hidden_dim);

}  // namespace retina::nn

#endif  // RETINA_NN_RECURRENT_H_
