#include "nn/recurrent.h"

#include <cassert>
#include <cmath>

namespace retina::nn {

const char* RecurrentKindName(RecurrentKind kind) {
  switch (kind) {
    case RecurrentKind::kGru:
      return "GRU";
    case RecurrentKind::kLstm:
      return "LSTM";
    case RecurrentKind::kSimpleRnn:
      return "SimpleRNN";
  }
  return "?";
}

namespace {

// dW += g x^T, dU += g h^T, db += g; dx += W^T g; dh += U^T g.
void AccumulateAffine(Param* W, Param* U, Param* b, const Vec& g,
                      const Vec& x, const Vec& h, Vec* dx, Vec* dh) {
  for (size_t i = 0; i < g.size(); ++i) {
    if (g[i] == 0.0) continue;
    double* wrow = W->grad.Row(i);
    for (size_t j = 0; j < x.size(); ++j) wrow[j] += g[i] * x[j];
    double* urow = U->grad.Row(i);
    for (size_t j = 0; j < h.size(); ++j) urow[j] += g[i] * h[j];
    b->grad(0, i) += g[i];
  }
  const Vec dxx = W->value.TransposeMatVec(g);
  for (size_t j = 0; j < dx->size(); ++j) (*dx)[j] += dxx[j];
  const Vec dhh = U->value.TransposeMatVec(g);
  for (size_t j = 0; j < dh->size(); ++j) (*dh)[j] += dhh[j];
}

}  // namespace

// ------------------------------------------------------------ SimpleRnn --

SimpleRnnCell::SimpleRnnCell(size_t in_dim, size_t hidden_dim)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      W_(hidden_dim, in_dim),
      U_(hidden_dim, hidden_dim),
      b_(1, hidden_dim) {}

Vec SimpleRnnCell::Forward(const Vec& x, const Vec& state,
                           RecCache* cache) const {
  assert(x.size() == in_dim_ && state.size() == hidden_dim_);
  Vec h = W_.value.MatVec(x);
  const Vec uh = U_.value.MatVec(state);
  for (size_t i = 0; i < hidden_dim_; ++i) {
    h[i] = std::tanh(h[i] + uh[i] + b_.value(0, i));
  }
  if (cache != nullptr) {
    cache->x = x;
    cache->state_prev = state;
    cache->aux = {h};
  }
  return h;
}

void SimpleRnnCell::Backward(const RecCache& cache, const Vec& dstate,
                             Vec* dx, Vec* dstate_prev) {
  const Vec& h = cache.aux[0];
  dx->assign(in_dim_, 0.0);
  dstate_prev->assign(hidden_dim_, 0.0);
  Vec da(hidden_dim_);
  for (size_t i = 0; i < hidden_dim_; ++i) {
    da[i] = dstate[i] * (1.0 - h[i] * h[i]);
  }
  AccumulateAffine(&W_, &U_, &b_, da, cache.x, cache.state_prev, dx,
                   dstate_prev);
}

// ----------------------------------------------------------------- LSTM --

LstmCell::LstmCell(size_t in_dim, size_t hidden_dim)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      Wi_(hidden_dim, in_dim),
      Ui_(hidden_dim, hidden_dim),
      bi_(1, hidden_dim),
      Wf_(hidden_dim, in_dim),
      Uf_(hidden_dim, hidden_dim),
      bf_(1, hidden_dim),
      Wo_(hidden_dim, in_dim),
      Uo_(hidden_dim, hidden_dim),
      bo_(1, hidden_dim),
      Wc_(hidden_dim, in_dim),
      Uc_(hidden_dim, hidden_dim),
      bc_(1, hidden_dim) {
  // Forget-gate bias init at 1 (standard trick for gradient flow); the
  // registry's InitGlorot leaves kKeep biases untouched, so this survives
  // registration + init.
  for (size_t i = 0; i < hidden_dim; ++i) bf_.value(0, i) = 1.0;
}

Vec LstmCell::Gate(const Param& W, const Param& U, const Param& b,
                   const Vec& x, const Vec& h) const {
  Vec out = W.value.MatVec(x);
  const Vec uh = U.value.MatVec(h);
  for (size_t i = 0; i < hidden_dim_; ++i) out[i] += uh[i] + b.value(0, i);
  return out;
}

Vec LstmCell::Forward(const Vec& x, const Vec& state,
                      RecCache* cache) const {
  assert(x.size() == in_dim_ && state.size() == 2 * hidden_dim_);
  const Vec h_prev(state.begin(), state.begin() + hidden_dim_);
  const Vec c_prev(state.begin() + hidden_dim_, state.end());

  Vec i_gate = Gate(Wi_, Ui_, bi_, x, h_prev);
  Vec f_gate = Gate(Wf_, Uf_, bf_, x, h_prev);
  Vec o_gate = Gate(Wo_, Uo_, bo_, x, h_prev);
  Vec g_gate = Gate(Wc_, Uc_, bc_, x, h_prev);
  for (size_t i = 0; i < hidden_dim_; ++i) {
    i_gate[i] = Sigmoid(i_gate[i]);
    f_gate[i] = Sigmoid(f_gate[i]);
    o_gate[i] = Sigmoid(o_gate[i]);
    g_gate[i] = std::tanh(g_gate[i]);
  }
  Vec c(hidden_dim_), h(hidden_dim_);
  for (size_t i = 0; i < hidden_dim_; ++i) {
    c[i] = f_gate[i] * c_prev[i] + i_gate[i] * g_gate[i];
    h[i] = o_gate[i] * std::tanh(c[i]);
  }
  if (cache != nullptr) {
    cache->x = x;
    cache->state_prev = state;
    cache->aux = {i_gate, f_gate, o_gate, g_gate, c};
  }
  Vec out = h;
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

void LstmCell::Backward(const RecCache& cache, const Vec& dstate, Vec* dx,
                        Vec* dstate_prev) {
  const size_t H = hidden_dim_;
  const Vec& i_gate = cache.aux[0];
  const Vec& f_gate = cache.aux[1];
  const Vec& o_gate = cache.aux[2];
  const Vec& g_gate = cache.aux[3];
  const Vec& c = cache.aux[4];
  const Vec h_prev(cache.state_prev.begin(), cache.state_prev.begin() + H);
  const Vec c_prev(cache.state_prev.begin() + H, cache.state_prev.end());

  dx->assign(in_dim_, 0.0);
  dstate_prev->assign(2 * H, 0.0);

  Vec da_i(H), da_f(H), da_o(H), da_g(H);
  for (size_t i = 0; i < H; ++i) {
    const double dh = dstate[i];
    const double tanh_c = std::tanh(c[i]);
    // dc from the h path plus the direct dc from the next step.
    const double dc = dh * o_gate[i] * (1.0 - tanh_c * tanh_c) +
                      dstate[H + i];
    const double do_ = dh * tanh_c;
    const double di = dc * g_gate[i];
    const double df = dc * c_prev[i];
    const double dg = dc * i_gate[i];
    // dc_prev carried to the previous step.
    (*dstate_prev)[H + i] = dc * f_gate[i];
    da_i[i] = di * i_gate[i] * (1.0 - i_gate[i]);
    da_f[i] = df * f_gate[i] * (1.0 - f_gate[i]);
    da_o[i] = do_ * o_gate[i] * (1.0 - o_gate[i]);
    da_g[i] = dg * (1.0 - g_gate[i] * g_gate[i]);
  }
  // dh_prev accumulates into the first H entries of dstate_prev.
  Vec dh_prev(H, 0.0);
  AccumulateAffine(&Wi_, &Ui_, &bi_, da_i, cache.x, h_prev, dx, &dh_prev);
  AccumulateAffine(&Wf_, &Uf_, &bf_, da_f, cache.x, h_prev, dx, &dh_prev);
  AccumulateAffine(&Wo_, &Uo_, &bo_, da_o, cache.x, h_prev, dx, &dh_prev);
  AccumulateAffine(&Wc_, &Uc_, &bc_, da_g, cache.x, h_prev, dx, &dh_prev);
  for (size_t i = 0; i < H; ++i) (*dstate_prev)[i] += dh_prev[i];
}

void LstmCell::RegisterParams(ParamRegistry* registry,
                              const std::string& scope) {
  registry->Register(scope + "/Wi", &Wi_, ParamInit::kGlorot);
  registry->Register(scope + "/Ui", &Ui_, ParamInit::kGlorot);
  registry->Register(scope + "/bi", &bi_);
  registry->Register(scope + "/Wf", &Wf_, ParamInit::kGlorot);
  registry->Register(scope + "/Uf", &Uf_, ParamInit::kGlorot);
  registry->Register(scope + "/bf", &bf_);
  registry->Register(scope + "/Wo", &Wo_, ParamInit::kGlorot);
  registry->Register(scope + "/Uo", &Uo_, ParamInit::kGlorot);
  registry->Register(scope + "/bo", &bo_);
  registry->Register(scope + "/Wc", &Wc_, ParamInit::kGlorot);
  registry->Register(scope + "/Uc", &Uc_, ParamInit::kGlorot);
  registry->Register(scope + "/bc", &bc_);
}

// ------------------------------------------------------------------ GRU --

Vec GruRecurrentCell::Forward(const Vec& x, const Vec& state,
                              RecCache* cache) const {
  GruCache gc;
  const Vec h = cell_.Forward(x, state, cache != nullptr ? &gc : nullptr);
  if (cache != nullptr) {
    cache->x = gc.x;
    cache->state_prev = gc.h_prev;
    cache->aux = {gc.z, gc.r, gc.hhat};
  }
  return h;
}

void GruRecurrentCell::Backward(const RecCache& cache, const Vec& dstate,
                                Vec* dx, Vec* dstate_prev) {
  GruCache gc;
  gc.x = cache.x;
  gc.h_prev = cache.state_prev;
  gc.z = cache.aux[0];
  gc.r = cache.aux[1];
  gc.hhat = cache.aux[2];
  cell_.Backward(gc, dstate, dx, dstate_prev);
}

std::unique_ptr<RecurrentCell> MakeRecurrentCell(RecurrentKind kind,
                                                 size_t in_dim,
                                                 size_t hidden_dim) {
  switch (kind) {
    case RecurrentKind::kGru:
      return std::make_unique<GruRecurrentCell>(in_dim, hidden_dim);
    case RecurrentKind::kLstm:
      return std::make_unique<LstmCell>(in_dim, hidden_dim);
    case RecurrentKind::kSimpleRnn:
      return std::make_unique<SimpleRnnCell>(in_dim, hidden_dim);
  }
  return nullptr;
}

}  // namespace retina::nn
