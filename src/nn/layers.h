// Dense layer and activations with explicit forward/backward passes.
//
// The network architectures in this library are small and fixed (Figure 4),
// so backprop is written by hand per layer instead of via a tape: each
// layer's Backward takes the cached input and the upstream gradient,
// accumulates parameter gradients, and returns the downstream gradient.

#ifndef RETINA_NN_LAYERS_H_
#define RETINA_NN_LAYERS_H_

#include <string>
#include <vector>

#include "common/sparse_vec.h"
#include "nn/param.h"
#include "nn/param_registry.h"

namespace retina::nn {

/// \brief Fully connected layer y = W x + b.
///
/// Construction leaves the weights zero; initialization happens through
/// the owning model's ParamRegistry (RegisterParams + InitGlorot).
class Dense {
 public:
  Dense(size_t in_dim, size_t out_dim) : W_(out_dim, in_dim), b_(1, out_dim) {}

  Vec Forward(const Vec& x) const;

  /// Forward for a sparse input; touches only W's columns at x's nonzero
  /// indices. Equal to Forward(x.ToDense()) — bitwise under the scalar
  /// kernel backend, within 1e-12 relative tolerance under SIMD (the
  /// sparse reduction partitions terms across lanes differently).
  Vec ForwardSparse(const SparseVec& x) const;

  /// Batched forward: Y row i = Forward(X row i), computed as one blocked
  /// GEMM against W instead of rows() MatVecs. Every output entry goes
  /// through the same dispatched dot kernel as Forward, so the rows are
  /// bit-identical to the one-vector-at-a-time path at any dispatch.
  Matrix ForwardBatch(const Matrix& X) const;

  /// Raw-buffer forward: y[0..out_dim) = W x + b for x of in_dim entries.
  /// Identical arithmetic to Forward; used by the arena-backed serving
  /// path to avoid per-request Vec allocations.
  void ForwardRaw(const double* x, double* y) const;

  /// Raw-buffer batched forward over n row-major rows of in_dim entries;
  /// y holds n x out_dim. Identical arithmetic to ForwardBatch.
  void ForwardBatchRaw(const double* x, size_t n, double* y) const;

  /// Accumulates dW, db from (cached input x, upstream dy); returns dx.
  Vec Backward(const Vec& x, const Vec& dy);

  /// Registers W (Glorot) and b (zero) under `scope`.
  void RegisterParams(ParamRegistry* registry, const std::string& scope) {
    registry->Register(scope + "/W", &W_, ParamInit::kGlorot);
    registry->Register(scope + "/b", &b_);
  }

  size_t in_dim() const { return W_.value.cols(); }
  size_t out_dim() const { return W_.value.rows(); }

 private:
  Param W_, b_;
};

/// y = W x for a sparse x: each output entry accumulates
/// W(i, j) * x_j over x's stored indices in ascending order — the nonzero
/// subsequence of MatVec's loop, so the result matches W.MatVec(x.ToDense())
/// bitwise under the scalar kernel backend and within 1e-12 relative
/// tolerance under SIMD.
Vec SparseMatVec(const Matrix& W, const SparseVec& x);

/// ReLU forward.
Vec Relu(const Vec& x);

/// Row-wise ReLU in place (batched activations).
void ReluInPlace(Matrix* x);

/// ReLU backward: dy masked by x > 0.
Vec ReluBackward(const Vec& x, const Vec& dy);

/// Element-wise sigmoid.
Vec SigmoidVec(const Vec& x);

/// Layer normalization without learnable affine (the "normalized" input
/// stage of Figure 4(b)); eps guards zero-variance inputs.
Vec LayerNorm(const Vec& x, double eps = 1e-5);

/// In-place raw-buffer layer norm, bit-identical to LayerNorm (same
/// mean/variance accumulation order). Serving assembles feature rows
/// directly into arena storage and normalizes them here.
void LayerNormInPlace(double* x, size_t n, double eps = 1e-5);

/// Backward of LayerNorm.
Vec LayerNormBackward(const Vec& x, const Vec& dy, double eps = 1e-5);

/// \brief Weighted binary cross-entropy (Eq. 6):
/// L = -w*t*log(p) - (1-t)*log(1-p).
struct WeightedBce {
  /// Positive-class weight w.
  double pos_weight = 1.0;

  double Loss(double p, int target) const;

  /// dL/dz where p = sigmoid(z) (the numerically stable fused gradient).
  double GradLogit(double p, int target) const;
};

/// The paper's positive-weight schedule: w = lambda (log C - log C+),
/// with C total and C+ positive training samples (Section VI-D).
double PositiveClassWeight(size_t total, size_t positives, double lambda);

}  // namespace retina::nn

#endif  // RETINA_NN_LAYERS_H_
