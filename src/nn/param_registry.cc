#include "nn/param_registry.h"

#include <cassert>

namespace retina::nn {

void ParamRegistry::Register(const std::string& name, Param* param,
                             ParamInit init) {
  assert(param != nullptr);
  assert(index_.count(name) == 0 && "duplicate parameter name");
  index_.emplace(name, entries_.size());
  entries_.push_back(Entry{name, param, init});
}

Param* ParamRegistry::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : entries_[it->second].param;
}

std::vector<Param*> ParamRegistry::params() const {
  std::vector<Param*> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.param);
  return out;
}

void ParamRegistry::ZeroGrads() const {
  for (const Entry& e : entries_) e.param->ZeroGrad();
}

void ParamRegistry::InitGlorot(Rng* rng) const {
  for (const Entry& e : entries_) {
    if (e.init == ParamInit::kGlorot) e.param->InitGlorot(rng);
  }
}

void SaveParams(const ParamRegistry& registry, io::Checkpoint* ckpt,
                const std::string& prefix) {
  for (const ParamRegistry::Entry& e : registry.entries()) {
    ckpt->PutTensor(prefix + e.name, e.param->value);
  }
}

Status LoadParams(const io::Checkpoint& ckpt, const std::string& prefix,
                  const ParamRegistry& registry) {
  for (const ParamRegistry::Entry& e : registry.entries()) {
    Matrix value;
    RETINA_RETURN_NOT_OK(ckpt.GetTensor(prefix + e.name, &value));
    if (value.rows() != e.param->value.rows() ||
        value.cols() != e.param->value.cols()) {
      return Status::InvalidArgument(
          "parameter " + e.name + " shape mismatch: checkpoint " +
          std::to_string(value.rows()) + "x" + std::to_string(value.cols()) +
          ", model " + std::to_string(e.param->value.rows()) + "x" +
          std::to_string(e.param->value.cols()));
    }
    e.param->value = std::move(value);
    e.param->ZeroGrad();
  }
  return Status::OK();
}

}  // namespace retina::nn
