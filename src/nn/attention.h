// Exogenous scaled dot-product attention (Eqs. 3-5, Figure 4(a)).
//
// The Query projection is applied to the tweet feature X^T; Key and Value
// projections to each element of the news feature sequence X^N. The
// attention weights A = softmax(Q.K / sqrt(hdim)) aggregate the Value
// vectors into the attended exogenous representation X^{T,N}.

#ifndef RETINA_NN_ATTENTION_H_
#define RETINA_NN_ATTENTION_H_

#include <string>
#include <vector>

#include "common/arena.h"
#include "nn/param.h"
#include "nn/param_registry.h"

namespace retina::nn {

/// Cache for ExogenousAttention::Backward. The news matrix is held by
/// pointer; the caller must keep it alive between Forward and Backward.
struct AttentionCache {
  Vec tweet;
  const Matrix* news = nullptr;
  Vec q;
  Matrix k, v;   // seq_len x hdim
  Vec weights;   // softmax attention weights (seq_len)
};

/// \brief Single-head scaled dot-product attention over a news sequence.
class ExogenousAttention {
 public:
  /// \param tweet_dim Dimensionality of the tweet feature X^T.
  /// \param news_dim Dimensionality of each news feature X^N_i.
  /// \param hdim Attention width (paper: 64).
  ExogenousAttention(size_t tweet_dim, size_t news_dim, size_t hdim);

  /// Computes X^{T,N} (hdim). `news` has one row per headline; an empty
  /// sequence yields the zero vector.
  Vec Forward(const Vec& tweet, const Matrix& news,
              AttentionCache* cache) const;

  /// Arena-backed Forward for the serving path: all temporaries (q, K, V,
  /// weights) come from `arena` and `out` receives the hdim() attended
  /// vector. Bit-identical to Forward — both run the same kernel core.
  void ForwardInto(const Vec& tweet, const Matrix& news,
                   ScratchArena* arena, double* out) const;

  /// Batched query path: row i of the result equals
  /// Forward(queries row i, news). The Key/Value projections — the
  /// dominant per-call cost — are computed once for the whole batch and
  /// the Query projection runs as one GEMM, so scoring many tweets
  /// against a shared news window costs a handful of GEMMs instead of
  /// per-call K/V work.
  Matrix ForwardBatch(const Matrix& queries, const Matrix& news) const;

  /// Accumulates parameter gradients from upstream `dout`; input gradients
  /// are not propagated (features are fixed).
  void Backward(const AttentionCache& cache, const Vec& dout);

  /// Registers Wq, Wk, Wv (all Glorot) under `scope`.
  void RegisterParams(ParamRegistry* registry, const std::string& scope) {
    registry->Register(scope + "/Wq", &Wq_, ParamInit::kGlorot);
    registry->Register(scope + "/Wk", &Wk_, ParamInit::kGlorot);
    registry->Register(scope + "/Wv", &Wv_, ParamInit::kGlorot);
  }

  /// Dimensionality of the tweet-side query input.
  size_t tweet_dim() const { return Wq_.value.rows(); }

  /// Attention weights from the last Forward on `cache` (diagnostics).
  size_t hdim() const { return hdim_; }

 private:
  // Shared kernel core over caller-provided buffers: q and out hold hdim
  // entries, k/v hold seq x hdim rows, weights holds seq entries; q, k, v
  // and out must arrive zeroed. Every path (Forward, ForwardInto,
  // ForwardBatch rows) funnels through this, so all of them are mutually
  // bit-identical at any kernel dispatch.
  void ForwardCore(const double* tweet, size_t tweet_dim, const Matrix& news,
                   double* q, double* k, double* v, double* weights,
                   double* out) const;

  // q += Wq^T tweet (axpy over Wq's rows, skipping zero tweet entries).
  void ProjectQuery(const double* tweet, size_t tweet_dim, double* q) const;

  // K, V = news (.) Wk, news (.) Wv into zeroed seq x hdim row-major
  // buffers, shared by the single and batched query paths.
  void ProjectKeysValues(const Matrix& news, double* k, double* v) const;

  size_t hdim_;
  Param Wq_;  // tweet_dim x hdim
  Param Wk_;  // news_dim x hdim
  Param Wv_;  // news_dim x hdim
};

}  // namespace retina::nn

#endif  // RETINA_NN_ATTENTION_H_
