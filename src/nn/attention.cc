#include "nn/attention.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace retina::nn {

ExogenousAttention::ExogenousAttention(size_t tweet_dim, size_t news_dim,
                                       size_t hdim)
    : hdim_(hdim),
      Wq_(tweet_dim, hdim),
      Wk_(news_dim, hdim),
      Wv_(news_dim, hdim) {}

void ExogenousAttention::ProjectQuery(const double* tweet, size_t tweet_dim,
                                      double* q) const {
  // Q = X^T (.) Wq : (hdim)
  for (size_t j = 0; j < tweet_dim; ++j) {
    if (tweet[j] == 0.0) continue;
    simd::Axpy(tweet[j], Wq_.value.Row(j), q, hdim_);
  }
}

void ExogenousAttention::ProjectKeysValues(const Matrix& news, double* k,
                                           double* v) const {
  const size_t seq = news.rows();
  assert(seq == 0 || news.cols() == Wk_.value.rows());
  for (size_t i = 0; i < seq; ++i) {
    const double* nrow = news.Row(i);
    double* krow = k + i * hdim_;
    double* vrow = v + i * hdim_;
    for (size_t j = 0; j < news.cols(); ++j) {
      const double x = nrow[j];
      if (x == 0.0) continue;
      simd::Axpy(x, Wk_.value.Row(j), krow, hdim_);
      simd::Axpy(x, Wv_.value.Row(j), vrow, hdim_);
    }
  }
}

void ExogenousAttention::ForwardCore(const double* tweet, size_t tweet_dim,
                                     const Matrix& news, double* q,
                                     double* k, double* v, double* weights,
                                     double* out) const {
  const size_t seq = news.rows();
  ProjectQuery(tweet, tweet_dim, q);
  ProjectKeysValues(news, k, v);

  // A = softmax(Q.K / sqrt(hdim)).
  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));
  for (size_t i = 0; i < seq; ++i) {
    weights[i] = simd::Dot(q, k + i * hdim_, hdim_) * scale;
  }
  SoftmaxInPlace(weights, seq);

  // X^{T,N} = sum_i A_i V_i.
  for (size_t i = 0; i < seq; ++i) {
    simd::Axpy(weights[i], v + i * hdim_, out, hdim_);
  }
}

Vec ExogenousAttention::Forward(const Vec& tweet, const Matrix& news,
                                AttentionCache* cache) const {
  assert(tweet.size() == Wq_.value.rows());
  const size_t seq = news.rows();
  Vec out(hdim_, 0.0);
  if (seq == 0) {
    if (cache != nullptr) {
      cache->tweet = tweet;
      cache->news = &news;
      cache->weights.clear();
    }
    return out;
  }
  assert(news.cols() == Wk_.value.rows());

  Vec q(hdim_, 0.0);
  Matrix k(seq, hdim_), v(seq, hdim_);
  Vec weights(seq);
  ForwardCore(tweet.data(), tweet.size(), news, q.data(), k.Row(0),
              v.Row(0), weights.data(), out.data());

  if (cache != nullptr) {
    cache->tweet = tweet;
    cache->news = &news;
    cache->q = std::move(q);
    cache->k = std::move(k);
    cache->v = std::move(v);
    cache->weights = std::move(weights);
  }
  return out;
}

void ExogenousAttention::ForwardInto(const Vec& tweet, const Matrix& news,
                                     ScratchArena* arena, double* out) const {
  assert(tweet.size() == Wq_.value.rows());
  const size_t seq = news.rows();
  std::fill(out, out + hdim_, 0.0);
  if (seq == 0) return;
  assert(news.cols() == Wk_.value.rows());

  double* q = arena->AllocDoublesZeroed(hdim_);
  double* k = arena->AllocDoublesZeroed(seq * hdim_);
  double* v = arena->AllocDoublesZeroed(seq * hdim_);
  double* weights = arena->AllocDoubles(seq);
  ForwardCore(tweet.data(), tweet.size(), news, q, k, v, weights, out);
}

Matrix ExogenousAttention::ForwardBatch(const Matrix& queries,
                                        const Matrix& news) const {
  assert(queries.cols() == Wq_.value.rows());
  const size_t n = queries.rows();
  const size_t seq = news.rows();
  Matrix out(n, hdim_);
  if (seq == 0 || n == 0) return out;

  // One K/V projection for the whole batch; each row's query projection,
  // weight dots and value aggregation run the identical kernels Forward
  // uses, so row i is bit-identical to Forward(queries row i, news) at
  // any dispatch choice.
  Matrix k(seq, hdim_), v(seq, hdim_);
  ProjectKeysValues(news, k.Row(0), v.Row(0));

  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));
  Vec q(hdim_);
  Vec weights(seq);
  for (size_t r = 0; r < n; ++r) {
    std::fill(q.begin(), q.end(), 0.0);
    ProjectQuery(queries.Row(r), queries.cols(), q.data());
    for (size_t i = 0; i < seq; ++i) {
      weights[i] = simd::Dot(q.data(), k.Row(i), hdim_) * scale;
    }
    SoftmaxInPlace(&weights);
    double* orow = out.Row(r);
    for (size_t i = 0; i < seq; ++i) {
      simd::Axpy(weights[i], v.Row(i), orow, hdim_);
    }
  }
  return out;
}

void ExogenousAttention::Backward(const AttentionCache& cache,
                                  const Vec& dout) {
  const size_t seq = cache.weights.size();
  if (seq == 0) return;
  const Matrix& news = *cache.news;
  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));

  // dV_i = a_i * dout; da_i = dout . V_i.
  Vec da(seq, 0.0);
  Matrix dv(seq, hdim_);
  for (size_t i = 0; i < seq; ++i) {
    const double* vrow = cache.v.Row(i);
    double* dvrow = dv.Row(i);
    double acc = 0.0;
    for (size_t h = 0; h < hdim_; ++h) {
      acc += dout[h] * vrow[h];
      dvrow[h] = cache.weights[i] * dout[h];
    }
    da[i] = acc;
  }

  // Softmax backward: ds_i = a_i (da_i - sum_j a_j da_j).
  double mix = 0.0;
  for (size_t i = 0; i < seq; ++i) mix += cache.weights[i] * da[i];
  Vec ds(seq);
  for (size_t i = 0; i < seq; ++i) {
    ds[i] = cache.weights[i] * (da[i] - mix) * scale;
  }

  // dq = sum_i ds_i K_i;  dK_i = ds_i q.
  Vec dq(hdim_, 0.0);
  Matrix dk(seq, hdim_);
  for (size_t i = 0; i < seq; ++i) {
    const double* krow = cache.k.Row(i);
    double* dkrow = dk.Row(i);
    for (size_t h = 0; h < hdim_; ++h) {
      dq[h] += ds[i] * krow[h];
      dkrow[h] = ds[i] * cache.q[h];
    }
  }

  // Parameter gradients: dWq += tweet (x) dq; dWk += news^T dk;
  // dWv += news^T dv.
  for (size_t j = 0; j < cache.tweet.size(); ++j) {
    const double x = cache.tweet[j];
    if (x == 0.0) continue;
    double* row = Wq_.grad.Row(j);
    for (size_t h = 0; h < hdim_; ++h) row[h] += x * dq[h];
  }
  for (size_t i = 0; i < seq; ++i) {
    const double* nrow = news.Row(i);
    const double* dkrow = dk.Row(i);
    const double* dvrow = dv.Row(i);
    for (size_t j = 0; j < news.cols(); ++j) {
      const double x = nrow[j];
      if (x == 0.0) continue;
      double* wkg = Wk_.grad.Row(j);
      double* wvg = Wv_.grad.Row(j);
      for (size_t h = 0; h < hdim_; ++h) {
        wkg[h] += x * dkrow[h];
        wvg[h] += x * dvrow[h];
      }
    }
  }
}

}  // namespace retina::nn
