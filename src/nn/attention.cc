#include "nn/attention.h"

#include <cassert>
#include <cmath>

namespace retina::nn {

ExogenousAttention::ExogenousAttention(size_t tweet_dim, size_t news_dim,
                                       size_t hdim)
    : hdim_(hdim),
      Wq_(tweet_dim, hdim),
      Wk_(news_dim, hdim),
      Wv_(news_dim, hdim) {}

Vec ExogenousAttention::Forward(const Vec& tweet, const Matrix& news,
                                AttentionCache* cache) const {
  assert(tweet.size() == Wq_.value.rows());
  const size_t seq = news.rows();
  Vec out(hdim_, 0.0);
  if (seq == 0) {
    if (cache != nullptr) {
      cache->tweet = tweet;
      cache->news = &news;
      cache->weights.clear();
    }
    return out;
  }
  assert(news.cols() == Wk_.value.rows());

  // Q = X^T (.) Wq : (hdim)
  Vec q(hdim_, 0.0);
  for (size_t j = 0; j < tweet.size(); ++j) {
    if (tweet[j] == 0.0) continue;
    const double* row = Wq_.value.Row(j);
    for (size_t h = 0; h < hdim_; ++h) q[h] += tweet[j] * row[h];
  }
  // K, V = X^N (.) Wk, X^N (.) Wv : (seq x hdim)
  Matrix k, v;
  ProjectKeysValues(news, &k, &v);

  // A = softmax(Q.K / sqrt(hdim)).
  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));
  Vec weights(seq);
  for (size_t i = 0; i < seq; ++i) {
    const double* krow = k.Row(i);
    double dot = 0.0;
    for (size_t h = 0; h < hdim_; ++h) dot += q[h] * krow[h];
    weights[i] = dot * scale;
  }
  SoftmaxInPlace(&weights);

  // X^{T,N} = sum_i A_i V_i.
  for (size_t i = 0; i < seq; ++i) {
    const double* vrow = v.Row(i);
    for (size_t h = 0; h < hdim_; ++h) out[h] += weights[i] * vrow[h];
  }

  if (cache != nullptr) {
    cache->tweet = tweet;
    cache->news = &news;
    cache->q = std::move(q);
    cache->k = std::move(k);
    cache->v = std::move(v);
    cache->weights = std::move(weights);
  }
  return out;
}

void ExogenousAttention::ProjectKeysValues(const Matrix& news, Matrix* k,
                                           Matrix* v) const {
  const size_t seq = news.rows();
  assert(seq == 0 || news.cols() == Wk_.value.rows());
  *k = Matrix(seq, hdim_);
  *v = Matrix(seq, hdim_);
  for (size_t i = 0; i < seq; ++i) {
    const double* nrow = news.Row(i);
    double* krow = k->Row(i);
    double* vrow = v->Row(i);
    for (size_t j = 0; j < news.cols(); ++j) {
      const double x = nrow[j];
      if (x == 0.0) continue;
      const double* wk = Wk_.value.Row(j);
      const double* wv = Wv_.value.Row(j);
      for (size_t h = 0; h < hdim_; ++h) {
        krow[h] += x * wk[h];
        vrow[h] += x * wv[h];
      }
    }
  }
}

Matrix ExogenousAttention::ForwardBatch(const Matrix& queries,
                                        const Matrix& news) const {
  assert(queries.cols() == Wq_.value.rows());
  const size_t n = queries.rows();
  const size_t seq = news.rows();
  Matrix out(n, hdim_);
  if (seq == 0 || n == 0) return out;

  // One K/V projection for the whole batch, one GEMM for all queries.
  Matrix k, v;
  ProjectKeysValues(news, &k, &v);
  const Matrix q = queries.MatMul(Wq_.value);

  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));
  Vec weights(seq);
  for (size_t r = 0; r < n; ++r) {
    const double* qrow = q.Row(r);
    for (size_t i = 0; i < seq; ++i) {
      const double* krow = k.Row(i);
      double dot = 0.0;
      for (size_t h = 0; h < hdim_; ++h) dot += qrow[h] * krow[h];
      weights[i] = dot * scale;
    }
    SoftmaxInPlace(&weights);
    double* orow = out.Row(r);
    for (size_t i = 0; i < seq; ++i) {
      const double* vrow = v.Row(i);
      for (size_t h = 0; h < hdim_; ++h) orow[h] += weights[i] * vrow[h];
    }
  }
  return out;
}

void ExogenousAttention::Backward(const AttentionCache& cache,
                                  const Vec& dout) {
  const size_t seq = cache.weights.size();
  if (seq == 0) return;
  const Matrix& news = *cache.news;
  const double scale = 1.0 / std::sqrt(static_cast<double>(hdim_));

  // dV_i = a_i * dout; da_i = dout . V_i.
  Vec da(seq, 0.0);
  Matrix dv(seq, hdim_);
  for (size_t i = 0; i < seq; ++i) {
    const double* vrow = cache.v.Row(i);
    double* dvrow = dv.Row(i);
    double acc = 0.0;
    for (size_t h = 0; h < hdim_; ++h) {
      acc += dout[h] * vrow[h];
      dvrow[h] = cache.weights[i] * dout[h];
    }
    da[i] = acc;
  }

  // Softmax backward: ds_i = a_i (da_i - sum_j a_j da_j).
  double mix = 0.0;
  for (size_t i = 0; i < seq; ++i) mix += cache.weights[i] * da[i];
  Vec ds(seq);
  for (size_t i = 0; i < seq; ++i) {
    ds[i] = cache.weights[i] * (da[i] - mix) * scale;
  }

  // dq = sum_i ds_i K_i;  dK_i = ds_i q.
  Vec dq(hdim_, 0.0);
  Matrix dk(seq, hdim_);
  for (size_t i = 0; i < seq; ++i) {
    const double* krow = cache.k.Row(i);
    double* dkrow = dk.Row(i);
    for (size_t h = 0; h < hdim_; ++h) {
      dq[h] += ds[i] * krow[h];
      dkrow[h] = ds[i] * cache.q[h];
    }
  }

  // Parameter gradients: dWq += tweet (x) dq; dWk += news^T dk;
  // dWv += news^T dv.
  for (size_t j = 0; j < cache.tweet.size(); ++j) {
    const double x = cache.tweet[j];
    if (x == 0.0) continue;
    double* row = Wq_.grad.Row(j);
    for (size_t h = 0; h < hdim_; ++h) row[h] += x * dq[h];
  }
  for (size_t i = 0; i < seq; ++i) {
    const double* nrow = news.Row(i);
    const double* dkrow = dk.Row(i);
    const double* dvrow = dv.Row(i);
    for (size_t j = 0; j < news.cols(); ++j) {
      const double x = nrow[j];
      if (x == 0.0) continue;
      double* wkg = Wk_.grad.Row(j);
      double* wvg = Wv_.grad.Row(j);
      for (size_t h = 0; h < hdim_; ++h) {
        wkg[h] += x * dkrow[h];
        wvg[h] += x * dvrow[h];
      }
    }
  }
}

}  // namespace retina::nn
