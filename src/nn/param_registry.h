// Named parameter registry: the single source of truth for a model's
// trainable tensors.
//
// Layers register their Params under hierarchical slash-separated scopes
// ("retina/ff1/W", "retina/rnn/Wz") in a deterministic order — the order
// of RegisterParams calls. Everything that used to consume ad-hoc
// std::vector<Param*> lists flows through the registry instead:
//
//   * Glorot initialization (InitGlorot walks kGlorot entries in
//     registration order, so the Rng draw sequence is a function of
//     model architecture alone),
//   * gradient zeroing (ZeroGrads),
//   * Optimizer::Register (per-param slot state keyed by entry index),
//   * checkpointing (SaveParams/LoadParams move named tensors in and out
//     of an io::Checkpoint bit-exactly).

#ifndef RETINA_NN_PARAM_REGISTRY_H_
#define RETINA_NN_PARAM_REGISTRY_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "io/checkpoint.h"
#include "nn/param.h"

namespace retina::nn {

/// How InitGlorot treats a registered parameter.
enum class ParamInit : uint8_t {
  kKeep = 0,    // leave the constructed value (zeros, or a layer-set
                // constant like the LSTM forget-gate bias)
  kGlorot = 1,  // Glorot-uniform draw from the shared init Rng
};

/// \brief Ordered, named collection of non-owning Param pointers.
class ParamRegistry {
 public:
  struct Entry {
    std::string name;
    Param* param = nullptr;
    ParamInit init = ParamInit::kKeep;
  };

  /// Registers `param` under `name`. Names must be unique; registration
  /// order is the Glorot draw order and the optimizer slot order.
  void Register(const std::string& name, Param* param,
                ParamInit init = ParamInit::kKeep);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Pointer to the named param, or nullptr if absent.
  Param* Find(const std::string& name) const;

  /// The registered params in registration order.
  std::vector<Param*> params() const;

  /// Zeroes every parameter's gradient accumulator.
  void ZeroGrads() const;

  /// Glorot-initializes every kGlorot entry, in registration order, from
  /// `rng`. kKeep entries are untouched.
  void InitGlorot(Rng* rng) const;

 private:
  std::vector<Entry> entries_;
  std::unordered_map<std::string, size_t> index_;
};

/// Writes every registered tensor to `ckpt` as `prefix + name`.
void SaveParams(const ParamRegistry& registry, io::Checkpoint* ckpt,
                const std::string& prefix);

/// Restores every registered tensor from `ckpt` (`prefix + name`),
/// shape-checked; gradients are zeroed. Errors if any entry is missing
/// or has a mismatched shape.
Status LoadParams(const io::Checkpoint& ckpt, const std::string& prefix,
                  const ParamRegistry& registry);

}  // namespace retina::nn

#endif  // RETINA_NN_PARAM_REGISTRY_H_
