#include "nn/optimizer.h"

#include <cmath>

namespace retina::nn {

void Sgd::Register(std::vector<Param*> params) {
  Optimizer::Register(std::move(params));
  velocity_.clear();
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& vel = velocity_[i].data();
    auto& val = p->value.data();
    const auto& g = p->grad.data();
    for (size_t j = 0; j < val.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * g[j];
      val[j] += vel[j];
    }
    p->ZeroGrad();
  }
}

void Adam::Register(std::vector<Param*> params) {
  Optimizer::Register(std::move(params));
  m_.clear();
  v_.clear();
  t_ = 0;
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    auto& val = p->value.data();
    const auto& g = p->grad.data();
    for (size_t j = 0; j < val.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->ZeroGrad();
  }
}

}  // namespace retina::nn
