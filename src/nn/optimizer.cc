#include "nn/optimizer.h"

#include <cmath>

namespace retina::nn {

void Optimizer::Register(const ParamRegistry& registry) {
  params_.clear();
  names_.clear();
  for (const ParamRegistry::Entry& e : registry.entries()) {
    params_.push_back(e.param);
    names_.push_back(e.name);
  }
}

Status Optimizer::SaveState(io::Checkpoint* ckpt,
                            const std::string& prefix) const {
  ckpt->PutString(prefix + "kind", Kind());
  return Status::OK();
}

Status Optimizer::LoadState(const io::Checkpoint& ckpt,
                            const std::string& prefix) {
  std::string kind;
  RETINA_RETURN_NOT_OK(ckpt.GetString(prefix + "kind", &kind));
  if (kind != Kind()) {
    return Status::InvalidArgument("optimizer kind mismatch: checkpoint " +
                                   kind + ", model " + Kind());
  }
  return Status::OK();
}

Status Optimizer::SaveSlots(io::Checkpoint* ckpt, const std::string& prefix,
                            const std::string& slot,
                            const std::vector<Matrix>& tensors) const {
  if (tensors.size() != names_.size()) {
    return Status::FailedPrecondition(
        "optimizer slot count does not match registered parameters");
  }
  for (size_t i = 0; i < tensors.size(); ++i) {
    ckpt->PutTensor(prefix + names_[i] + "/" + slot, tensors[i]);
  }
  return Status::OK();
}

Status Optimizer::LoadSlots(const io::Checkpoint& ckpt,
                            const std::string& prefix,
                            const std::string& slot,
                            std::vector<Matrix>* tensors) const {
  if (tensors->size() != names_.size()) {
    return Status::FailedPrecondition(
        "optimizer slots not allocated: call Register before LoadState");
  }
  for (size_t i = 0; i < names_.size(); ++i) {
    Matrix value;
    RETINA_RETURN_NOT_OK(
        ckpt.GetTensor(prefix + names_[i] + "/" + slot, &value));
    if (value.rows() != (*tensors)[i].rows() ||
        value.cols() != (*tensors)[i].cols()) {
      return Status::InvalidArgument("optimizer slot " + names_[i] + "/" +
                                     slot + " shape mismatch");
    }
    (*tensors)[i] = std::move(value);
  }
  return Status::OK();
}

void Sgd::Register(const ParamRegistry& registry) {
  Optimizer::Register(registry);
  velocity_.clear();
  for (Param* p : params_) {
    velocity_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& vel = velocity_[i].data();
    auto& val = p->value.data();
    const auto& g = p->grad.data();
    for (size_t j = 0; j < val.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * g[j];
      val[j] += vel[j];
    }
    p->ZeroGrad();
  }
}

Status Sgd::SaveState(io::Checkpoint* ckpt,
                      const std::string& prefix) const {
  RETINA_RETURN_NOT_OK(Optimizer::SaveState(ckpt, prefix));
  return SaveSlots(ckpt, prefix, "velocity", velocity_);
}

Status Sgd::LoadState(const io::Checkpoint& ckpt,
                      const std::string& prefix) {
  RETINA_RETURN_NOT_OK(Optimizer::LoadState(ckpt, prefix));
  return LoadSlots(ckpt, prefix, "velocity", &velocity_);
}

void Adam::Register(const ParamRegistry& registry) {
  Optimizer::Register(registry);
  m_.clear();
  v_.clear();
  t_ = 0;
  for (Param* p : params_) {
    m_.emplace_back(p->value.rows(), p->value.cols());
    v_.emplace_back(p->value.rows(), p->value.cols());
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    auto& m = m_[i].data();
    auto& v = v_[i].data();
    auto& val = p->value.data();
    const auto& g = p->grad.data();
    for (size_t j = 0; j < val.size(); ++j) {
      m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
      v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
      const double mhat = m[j] / bc1;
      const double vhat = v[j] / bc2;
      val[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
    p->ZeroGrad();
  }
}

Status Adam::SaveState(io::Checkpoint* ckpt,
                       const std::string& prefix) const {
  RETINA_RETURN_NOT_OK(Optimizer::SaveState(ckpt, prefix));
  ckpt->PutI64(prefix + "t", static_cast<int64_t>(t_));
  RETINA_RETURN_NOT_OK(SaveSlots(ckpt, prefix, "m", m_));
  return SaveSlots(ckpt, prefix, "v", v_);
}

Status Adam::LoadState(const io::Checkpoint& ckpt,
                       const std::string& prefix) {
  RETINA_RETURN_NOT_OK(Optimizer::LoadState(ckpt, prefix));
  int64_t t;
  RETINA_RETURN_NOT_OK(ckpt.GetI64(prefix + "t", &t));
  RETINA_RETURN_NOT_OK(LoadSlots(ckpt, prefix, "m", &m_));
  RETINA_RETURN_NOT_OK(LoadSlots(ckpt, prefix, "v", &v_));
  t_ = static_cast<long>(t);
  return Status::OK();
}

}  // namespace retina::nn
