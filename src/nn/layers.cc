#include "nn/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/simd.h"

namespace retina::nn {

void Dense::ForwardRaw(const double* x, double* y) const {
  const size_t out = W_.value.rows();
  simd::MatVec(W_.value.Row(0), out, W_.value.cols(), x, y);
  for (size_t i = 0; i < out; ++i) y[i] += b_.value(0, i);
}

void Dense::ForwardBatchRaw(const double* x, size_t n, double* y) const {
  const size_t out = W_.value.rows();
  simd::MatMulTransposedB(x, n, W_.value.cols(), W_.value.Row(0), out, y);
  for (size_t r = 0; r < n; ++r) {
    double* row = y + r * out;
    for (size_t i = 0; i < out; ++i) row[i] += b_.value(0, i);
  }
}

Vec Dense::Forward(const Vec& x) const {
  assert(x.size() == W_.value.cols());
  Vec y(W_.value.rows());
  ForwardRaw(x.data(), y.data());
  return y;
}

Vec Dense::ForwardSparse(const SparseVec& x) const {
  assert(x.dim() == W_.value.cols());
  Vec y = SparseMatVec(W_.value, x);
  for (size_t i = 0; i < y.size(); ++i) y[i] += b_.value(0, i);
  return y;
}

Matrix Dense::ForwardBatch(const Matrix& X) const {
  assert(X.cols() == W_.value.cols());
  Matrix Y(X.rows(), W_.value.rows());
  ForwardBatchRaw(X.rows() == 0 ? nullptr : X.Row(0), X.rows(),
                  Y.rows() == 0 ? nullptr : Y.Row(0));
  return Y;
}

Vec SparseMatVec(const Matrix& W, const SparseVec& x) {
  assert(x.dim() == W.cols());
  Vec y(W.rows(), 0.0);
  simd::SparseMatVec(W.rows() == 0 ? nullptr : W.Row(0), W.rows(), W.cols(),
                     x.values().data(), x.indices().data(), x.nnz(),
                     y.data());
  return y;
}

Vec Dense::Backward(const Vec& x, const Vec& dy) {
  assert(dy.size() == W_.value.rows());
  assert(x.size() == W_.value.cols());
  // dW += dy x^T ; db += dy ; dx = W^T dy.
  for (size_t i = 0; i < dy.size(); ++i) {
    if (dy[i] == 0.0) continue;
    double* grow = W_.grad.Row(i);
    for (size_t j = 0; j < x.size(); ++j) grow[j] += dy[i] * x[j];
    b_.grad(0, i) += dy[i];
  }
  return W_.value.TransposeMatVec(dy);
}

Vec Relu(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = std::max(0.0, x[i]);
  return y;
}

void ReluInPlace(Matrix* x) {
  for (double& v : x->data()) v = std::max(0.0, v);
}

Vec ReluBackward(const Vec& x, const Vec& dy) {
  assert(x.size() == dy.size());
  Vec dx(x.size());
  for (size_t i = 0; i < x.size(); ++i) dx[i] = x[i] > 0.0 ? dy[i] : 0.0;
  return dx;
}

Vec SigmoidVec(const Vec& x) {
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = Sigmoid(x[i]);
  return y;
}

Vec LayerNorm(const Vec& x, double eps) {
  const double mu = Mean(x);
  const double var = Variance(x);
  const double inv = 1.0 / std::sqrt(var + eps);
  Vec y(x.size());
  for (size_t i = 0; i < x.size(); ++i) y[i] = (x[i] - mu) * inv;
  return y;
}

void LayerNormInPlace(double* x, size_t n, double eps) {
  // Mirrors LayerNorm exactly: mean and variance accumulate in index
  // order with the same scalar loops Mean/Variance use.
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += x[i];
  const double mu = n == 0 ? 0.0 : sum / static_cast<double>(n);
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += (x[i] - mu) * (x[i] - mu);
  const double var = n == 0 ? 0.0 : acc / static_cast<double>(n);
  const double inv = 1.0 / std::sqrt(var + eps);
  for (size_t i = 0; i < n; ++i) x[i] = (x[i] - mu) * inv;
}

Vec LayerNormBackward(const Vec& x, const Vec& dy, double eps) {
  assert(x.size() == dy.size());
  const size_t n = x.size();
  const double nn = static_cast<double>(n);
  const double mu = Mean(x);
  const double var = Variance(x);
  const double inv = 1.0 / std::sqrt(var + eps);
  // y_i = (x_i - mu) * inv;  standard layer-norm gradient:
  // dx = inv * (dy - mean(dy) - y * mean(dy * y))
  Vec y(n);
  for (size_t i = 0; i < n; ++i) y[i] = (x[i] - mu) * inv;
  double mean_dy = 0.0, mean_dyy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mean_dy += dy[i];
    mean_dyy += dy[i] * y[i];
  }
  mean_dy /= nn;
  mean_dyy /= nn;
  Vec dx(n);
  for (size_t i = 0; i < n; ++i) {
    dx[i] = inv * (dy[i] - mean_dy - y[i] * mean_dyy);
  }
  return dx;
}

double WeightedBce::Loss(double p, int target) const {
  const double eps = 1e-12;
  p = std::clamp(p, eps, 1.0 - eps);
  if (target == 1) return -pos_weight * std::log(p);
  return -std::log(1.0 - p);
}

double WeightedBce::GradLogit(double p, int target) const {
  // d/dz of the weighted BCE with p = sigmoid(z):
  //   target=1: -w (1-p);  target=0: p.
  if (target == 1) return -pos_weight * (1.0 - p);
  return p;
}

double PositiveClassWeight(size_t total, size_t positives, double lambda) {
  if (positives == 0 || total == 0 || positives >= total) return 1.0;
  return lambda * (std::log(static_cast<double>(total)) -
                   std::log(static_cast<double>(positives)));
}

}  // namespace retina::nn
