#include "nn/gru.h"

#include <cassert>
#include <cmath>

namespace retina::nn {

namespace {

Vec AffineGate(const Param& W, const Param& U, const Param& b, const Vec& x,
               const Vec& h) {
  Vec out = W.value.MatVec(x);
  const Vec uh = U.value.MatVec(h);
  for (size_t i = 0; i < out.size(); ++i) out[i] += uh[i] + b.value(0, i);
  return out;
}

// Accumulates dW += g x^T, dU += g h^T, db += g.
void AccumulateGate(Param* W, Param* U, Param* b, const Vec& g, const Vec& x,
                    const Vec& h, Vec* dx, Vec* dh) {
  for (size_t i = 0; i < g.size(); ++i) {
    if (g[i] == 0.0) continue;
    double* wrow = W->grad.Row(i);
    for (size_t j = 0; j < x.size(); ++j) wrow[j] += g[i] * x[j];
    double* urow = U->grad.Row(i);
    for (size_t j = 0; j < h.size(); ++j) urow[j] += g[i] * h[j];
    b->grad(0, i) += g[i];
  }
  const Vec dxx = W->value.TransposeMatVec(g);
  for (size_t j = 0; j < dx->size(); ++j) (*dx)[j] += dxx[j];
  const Vec dhh = U->value.TransposeMatVec(g);
  for (size_t j = 0; j < dh->size(); ++j) (*dh)[j] += dhh[j];
}

}  // namespace

GruCell::GruCell(size_t in_dim, size_t hidden_dim)
    : in_dim_(in_dim),
      hidden_dim_(hidden_dim),
      Wz_(hidden_dim, in_dim),
      Uz_(hidden_dim, hidden_dim),
      bz_(1, hidden_dim),
      Wr_(hidden_dim, in_dim),
      Ur_(hidden_dim, hidden_dim),
      br_(1, hidden_dim),
      Wh_(hidden_dim, in_dim),
      Uh_(hidden_dim, hidden_dim),
      bh_(1, hidden_dim) {}

Vec GruCell::Forward(const Vec& x, const Vec& h_prev,
                     GruCache* cache) const {
  assert(x.size() == in_dim_ && h_prev.size() == hidden_dim_);
  Vec z = AffineGate(Wz_, Uz_, bz_, x, h_prev);
  Vec r = AffineGate(Wr_, Ur_, br_, x, h_prev);
  for (double& v : z) v = Sigmoid(v);
  for (double& v : r) v = Sigmoid(v);
  Vec rh(hidden_dim_);
  for (size_t i = 0; i < hidden_dim_; ++i) rh[i] = r[i] * h_prev[i];
  Vec hhat = AffineGate(Wh_, Uh_, bh_, x, rh);
  for (double& v : hhat) v = std::tanh(v);
  Vec h(hidden_dim_);
  for (size_t i = 0; i < hidden_dim_; ++i) {
    h[i] = (1.0 - z[i]) * h_prev[i] + z[i] * hhat[i];
  }
  if (cache != nullptr) {
    cache->x = x;
    cache->h_prev = h_prev;
    cache->z = z;
    cache->r = r;
    cache->hhat = hhat;
  }
  return h;
}

void GruCell::Backward(const GruCache& cache, const Vec& dh, Vec* dx,
                       Vec* dh_prev) {
  const size_t H = hidden_dim_;
  dx->assign(in_dim_, 0.0);
  dh_prev->assign(H, 0.0);

  Vec dz(H), dhhat(H);
  for (size_t i = 0; i < H; ++i) {
    // h = (1-z) h_prev + z hhat
    (*dh_prev)[i] += dh[i] * (1.0 - cache.z[i]);
    dhhat[i] = dh[i] * cache.z[i];
    dz[i] = dh[i] * (cache.hhat[i] - cache.h_prev[i]);
  }

  // hhat = tanh(a_h), a_h = Wh x + Uh (r*h_prev) + bh
  Vec da_h(H);
  for (size_t i = 0; i < H; ++i) {
    da_h[i] = dhhat[i] * (1.0 - cache.hhat[i] * cache.hhat[i]);
  }
  Vec rh(H);
  for (size_t i = 0; i < H; ++i) rh[i] = cache.r[i] * cache.h_prev[i];
  Vec drh(H, 0.0);
  AccumulateGate(&Wh_, &Uh_, &bh_, da_h, cache.x, rh, dx, &drh);
  Vec dr(H);
  for (size_t i = 0; i < H; ++i) {
    dr[i] = drh[i] * cache.h_prev[i];
    (*dh_prev)[i] += drh[i] * cache.r[i];
  }

  // Gates: sigmoid derivative.
  Vec da_z(H), da_r(H);
  for (size_t i = 0; i < H; ++i) {
    da_z[i] = dz[i] * cache.z[i] * (1.0 - cache.z[i]);
    da_r[i] = dr[i] * cache.r[i] * (1.0 - cache.r[i]);
  }
  AccumulateGate(&Wz_, &Uz_, &bz_, da_z, cache.x, cache.h_prev, dx, dh_prev);
  AccumulateGate(&Wr_, &Ur_, &br_, da_r, cache.x, cache.h_prev, dx, dh_prev);
}

void GruCell::RegisterParams(ParamRegistry* registry,
                             const std::string& scope) {
  registry->Register(scope + "/Wz", &Wz_, ParamInit::kGlorot);
  registry->Register(scope + "/Uz", &Uz_, ParamInit::kGlorot);
  registry->Register(scope + "/bz", &bz_);
  registry->Register(scope + "/Wr", &Wr_, ParamInit::kGlorot);
  registry->Register(scope + "/Ur", &Ur_, ParamInit::kGlorot);
  registry->Register(scope + "/br", &br_);
  registry->Register(scope + "/Wh", &Wh_, ParamInit::kGlorot);
  registry->Register(scope + "/Uh", &Uh_, ParamInit::kGlorot);
  registry->Register(scope + "/bh", &bh_);
}

}  // namespace retina::nn
