// SGD and Adam optimizers (the paper tunes RETINA with Adam in static mode
// and SGD with learning rate 1e-2 in dynamic mode).
//
// Optimizers consume a ParamRegistry: per-parameter slot state (momentum,
// Adam moments) is keyed by registration order and named after the
// registered tensors, so optimizer state checkpoints round-trip by name
// and training resumes from a checkpoint step-for-step identically.

#ifndef RETINA_NN_OPTIMIZER_H_
#define RETINA_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "io/checkpoint.h"
#include "nn/param.h"
#include "nn/param_registry.h"

namespace retina::nn {

/// \brief Applies a gradient step to registered parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers the parameters to optimize (call once before Step); resets
  /// all slot state.
  virtual void Register(const ParamRegistry& registry);

  /// One update using the accumulated gradients; zeroes them afterwards.
  virtual void Step() = 0;

  /// Stable identifier ("sgd", "adam") recorded in checkpoints.
  virtual const char* Kind() const = 0;

  /// Writes the optimizer's dynamic state (slot tensors, step counter)
  /// under `prefix`. Hyperparameters are not saved: they are rebuilt from
  /// the model options at load time.
  virtual Status SaveState(io::Checkpoint* ckpt,
                           const std::string& prefix) const;

  /// Restores state written by SaveState; the same registry must already
  /// be Registered. Errors on kind or shape mismatch.
  virtual Status LoadState(const io::Checkpoint& ckpt,
                           const std::string& prefix);

  const std::vector<Param*>& params() const { return params_; }

 protected:
  Status SaveSlots(io::Checkpoint* ckpt, const std::string& prefix,
                   const std::string& slot,
                   const std::vector<Matrix>& tensors) const;
  Status LoadSlots(const io::Checkpoint& ckpt, const std::string& prefix,
                   const std::string& slot,
                   std::vector<Matrix>* tensors) const;

  std::vector<Param*> params_;
  std::vector<std::string> names_;  // parallel to params_
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  void Register(const ParamRegistry& registry) override;
  void Step() override;
  const char* Kind() const override { return "sgd"; }
  Status SaveState(io::Checkpoint* ckpt,
                   const std::string& prefix) const override;
  Status LoadState(const io::Checkpoint& ckpt,
                   const std::string& prefix) override;

 private:
  double lr_, momentum_;
  std::vector<Matrix> velocity_;
};

/// \brief Adam with default (paper) hyperparameters.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Register(const ParamRegistry& registry) override;
  void Step() override;
  const char* Kind() const override { return "adam"; }
  Status SaveState(io::Checkpoint* ckpt,
                   const std::string& prefix) const override;
  Status LoadState(const io::Checkpoint& ckpt,
                   const std::string& prefix) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<Matrix> m_, v_;
  long t_ = 0;
};

}  // namespace retina::nn

#endif  // RETINA_NN_OPTIMIZER_H_
