// SGD and Adam optimizers (the paper tunes RETINA with Adam in static mode
// and SGD with learning rate 1e-2 in dynamic mode).

#ifndef RETINA_NN_OPTIMIZER_H_
#define RETINA_NN_OPTIMIZER_H_

#include <memory>
#include <vector>

#include "nn/param.h"

namespace retina::nn {

/// \brief Applies a gradient step to registered parameters.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registers the parameters to optimize (call once before Step).
  virtual void Register(std::vector<Param*> params) { params_ = std::move(params); }

  /// One update using the accumulated gradients; zeroes them afterwards.
  virtual void Step() = 0;

  const std::vector<Param*>& params() const { return params_; }

 protected:
  std::vector<Param*> params_;
};

/// \brief Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0)
      : lr_(lr), momentum_(momentum) {}

  void Register(std::vector<Param*> params) override;
  void Step() override;

 private:
  double lr_, momentum_;
  std::vector<Matrix> velocity_;
};

/// \brief Adam with default (paper) hyperparameters.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr = 1e-3, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void Register(std::vector<Param*> params) override;
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<Matrix> m_, v_;
  long t_ = 0;
};

}  // namespace retina::nn

#endif  // RETINA_NN_OPTIMIZER_H_
