// Gated Recurrent Unit cell (the recurrent stage of dynamic RETINA,
// Figure 4(c)).

#ifndef RETINA_NN_GRU_H_
#define RETINA_NN_GRU_H_

#include <string>
#include <vector>

#include "nn/param.h"
#include "nn/param_registry.h"

namespace retina::nn {

/// Per-step cache needed by GruCell::Backward.
struct GruCache {
  Vec x, h_prev;
  Vec z, r, hhat;  // gate activations
};

/// \brief GRU cell:
///   z = sigmoid(Wz x + Uz h + bz)
///   r = sigmoid(Wr x + Ur h + br)
///   hhat = tanh(Wh x + Uh (r*h) + bh)
///   h' = (1-z)*h + z*hhat
class GruCell {
 public:
  GruCell(size_t in_dim, size_t hidden_dim);

  /// One step; fills `cache` for the backward pass.
  Vec Forward(const Vec& x, const Vec& h_prev, GruCache* cache) const;

  /// Backward through one step. `dh` is the gradient w.r.t. the step's
  /// output h'. Accumulates parameter gradients; outputs gradients w.r.t.
  /// the step input and previous hidden state.
  void Backward(const GruCache& cache, const Vec& dh, Vec* dx,
                Vec* dh_prev);

  /// Registers the gate weights (W*/U* Glorot, biases zero) under `scope`.
  void RegisterParams(ParamRegistry* registry, const std::string& scope);

  size_t hidden_dim() const { return hidden_dim_; }
  size_t in_dim() const { return in_dim_; }

 private:
  size_t in_dim_, hidden_dim_;
  Param Wz_, Uz_, bz_;
  Param Wr_, Ur_, br_;
  Param Wh_, Uh_, bh_;
};

}  // namespace retina::nn

#endif  // RETINA_NN_GRU_H_
