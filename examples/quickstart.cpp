// Quickstart: generate a synthetic Twitter+news world, run the annotation
// pipeline, build the feature extractor, train static RETINA, and predict
// the most likely retweeters of a tweet.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <algorithm>
#include <cstdio>

#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"

using namespace retina;

int main() {
  // 1. A small world: ~2.5k root tweets over 71 days, 2000 users.
  datagen::WorldConfig config;
  config.scale = 0.08;
  config.num_users = 2000;
  datagen::SyntheticWorld world = datagen::SyntheticWorld::Generate(config, 42);
  std::printf("world: %zu tweets, %zu users, %zu headlines\n",
              world.tweets().size(), world.NumUsers(),
              world.news().articles().size());

  // 2. Annotation pipeline: gold labels from a simulated annotator panel,
  //    machine labels from the fine-tuned Davidson detector.
  auto report = hatedetect::AnnotateWorld(&world, {});
  if (!report.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("annotation: alpha=%.2f, detector AUC=%.2f\n",
              report.ValueOrDie().krippendorff_alpha,
              report.ValueOrDie().finetuned_auc);

  // 3. Feature pipeline (Sections IV & V-A).
  core::FeatureConfig fc;
  fc.history_tfidf_dim = 150;
  fc.news_tfidf_dim = 150;
  fc.tweet_tfidf_dim = 150;
  fc.news_window = 30;
  auto fx = core::FeatureExtractor::Build(world, fc);
  if (!fx.ok()) {
    std::fprintf(stderr, "features failed: %s\n",
                 fx.status().ToString().c_str());
    return 1;
  }
  const core::FeatureExtractor extractor = std::move(fx).ValueOrDie();

  // 4. Retweeter-prediction task + static RETINA.
  core::RetweetTaskOptions topts;
  topts.min_news = 30;
  auto task_result = core::BuildRetweetTask(extractor, topts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "task failed: %s\n",
                 task_result.status().ToString().c_str());
    return 1;
  }
  const core::RetweetTask& task = task_result.ValueOrDie();

  core::RetinaOptions ropts;
  ropts.epochs = 3;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), ropts);
  if (!model.Train(task).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  const core::BinaryEval eval = core::EvaluateBinary(
      task.test, model.ScoreCandidates(task, task.test));
  std::printf("RETINA-S test: macro-F1=%.2f, AUC=%.2f\n", eval.macro_f1,
              eval.auc);

  // 5. Rank the candidates of the first test cascade.
  const size_t tweet_pos = task.test.front().tweet_pos;
  std::printf("\ncandidates for tweet #%zu (%s root):\n",
              task.tweets[tweet_pos].tweet_id,
              task.tweets[tweet_pos].hateful ? "hateful" : "non-hate");
  struct Scored {
    double p;
    datagen::NodeId user;
    int label;
  };
  std::vector<Scored> scored;
  for (const auto& cand : task.test) {
    if (cand.tweet_pos != tweet_pos) continue;
    scored.push_back({model.PredictScore(task.tweets[tweet_pos],
                                         cand.user_features),
                      cand.user, cand.label});
  }
  std::sort(scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) { return a.p > b.p; });
  for (size_t i = 0; i < std::min<size_t>(8, scored.size()); ++i) {
    std::printf("  user %-6u  P(retweet)=%.3f  actually retweeted: %s\n",
                scored[i].user, scored[i].p,
                scored[i].label ? "yes" : "no");
  }
  return 0;
}
