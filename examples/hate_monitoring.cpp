// Hate-generation monitoring: the paper's motivating application for
// Section IV — given a trending hashtag, rank users by their predicted
// probability of posting hateful content under it, so a moderation team
// can prioritize review before the content spreads.

#include <algorithm>
#include <cstdio>

#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"

using namespace retina;

int main() {
  datagen::WorldConfig config;
  config.scale = 0.1;
  config.num_users = 2000;
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(config, 99);
  if (!hatedetect::AnnotateWorld(&world, {}).ok()) return 1;

  core::FeatureConfig fc;
  fc.history_tfidf_dim = 150;
  fc.news_tfidf_dim = 150;
  fc.tweet_tfidf_dim = 150;
  fc.news_window = 30;
  auto fx = core::FeatureExtractor::Build(world, fc);
  if (!fx.ok()) return 1;
  const core::FeatureExtractor extractor = std::move(fx).ValueOrDie();

  // The paper's Table IV winner is a depth-5 decision tree, but a single
  // tree emits coarse leaf probabilities that tie at the top of a ranking
  // sweep; for a deployment-style risk ranking we use the forest variant,
  // which shares the tree's inductive bias with smoother scores.
  core::HateGenTaskOptions opts;
  opts.min_news = 30;
  auto task_result = core::BuildHateGenTask(extractor, opts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "%s\n", task_result.status().ToString().c_str());
    return 1;
  }
  const core::HateGenTask& task = task_result.ValueOrDie();
  ml::RandomForestOptions fopts;
  fopts.n_estimators = 40;
  fopts.max_depth = 6;
  ml::RandomForest model(fopts);
  auto eval = core::RunHateGenPipeline(task, &model,
                                       core::ProcVariant::kDownsample, 1);
  if (!eval.ok()) return 1;
  std::printf("hate-generation model (forest+DS): macro-F1=%.2f AUC=%.2f on gold test\n",
              eval.ValueOrDie().macro_f1, eval.ValueOrDie().auc);

  // Monitoring sweep: for the most hate-affine hashtag, score every user
  // who has tweeted recently and surface the riskiest accounts.
  size_t hashtag = 0;
  for (size_t h = 0; h < world.hashtags().size(); ++h) {
    if (world.hashtags()[h].target_pct_hate >
        world.hashtags()[hashtag].target_pct_hate) {
      hashtag = h;
    }
  }
  const double now = world.config().horizon_days * 24.0 * 0.6;
  std::printf("\nmonitoring %s at t=%.0fh — top risk accounts:\n",
              world.hashtags()[hashtag].tag.c_str(), now);

  struct Risk {
    double p;
    datagen::NodeId user;
    bool truly_prone;
  };
  std::vector<Risk> risks;
  for (datagen::NodeId u = 0; u < world.NumUsers(); u += 2) {  // sample
    const Vec x = extractor.HateGenFeatures(u, hashtag, now);
    risks.push_back({model.PredictProba(x), u,
                     world.users()[u].echo_community >= 0});
  }
  std::sort(risks.begin(), risks.end(),
            [](const Risk& a, const Risk& b) { return a.p > b.p; });
  size_t prone_in_top = 0;
  for (size_t i = 0; i < 10 && i < risks.size(); ++i) {
    std::printf("  user %-6u  P(hate)=%.3f  hate-prone (ground truth): %s\n",
                risks[i].user, risks[i].p,
                risks[i].truly_prone ? "yes" : "no");
    prone_in_top += risks[i].truly_prone;
  }
  std::printf(
      "\n%zu of the top 10 flagged accounts are ground-truth hate-prone "
      "(base rate %.0f%%)\n",
      prone_in_top, 100.0 * world.config().hater_fraction);
  return 0;
}
