// Exogenous-attention inspection: train static RETINA, then look inside
// the attention block (Figure 4a) — which recent headlines does the model
// weight when predicting the spread of a given tweet, and do the weights
// concentrate on topically related news?

#include <algorithm>
#include <cstdio>

#include "core/feature_extractor.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "nn/attention.h"

using namespace retina;

int main() {
  datagen::WorldConfig config;
  config.scale = 0.08;
  config.num_users = 2000;
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(config, 5);
  if (!hatedetect::AnnotateWorld(&world, {}).ok()) return 1;

  core::FeatureConfig fc;
  fc.history_tfidf_dim = 150;
  fc.news_tfidf_dim = 150;
  fc.tweet_tfidf_dim = 150;
  fc.news_window = 20;
  auto fx = core::FeatureExtractor::Build(world, fc);
  if (!fx.ok()) return 1;
  const core::FeatureExtractor extractor = std::move(fx).ValueOrDie();

  core::RetweetTaskOptions topts;
  topts.min_news = 20;
  auto task_result = core::BuildRetweetTask(extractor, topts);
  if (!task_result.ok()) return 1;
  const core::RetweetTask& task = task_result.ValueOrDie();

  core::RetinaOptions ropts;
  ropts.epochs = 3;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), ropts);
  if (!model.Train(task).ok()) return 1;
  std::printf("trained RETINA-S on %zu candidates\n", task.train.size());

  // Reproduce the attention computation for a few test tweets using a
  // stand-alone attention block seeded identically (the library keeps the
  // trained block internal; here we inspect the *mechanism*: alignment of
  // softmax weight mass with topical relatedness of headlines).
  for (size_t shown = 0, t = 0; shown < 3 && t < task.tweets.size(); ++t) {
    const auto& ctx = task.tweets[t];
    const auto& tweet = world.tweets()[ctx.tweet_id];
    const size_t topic = world.hashtags()[tweet.hashtag].topic;
    const auto idx = world.news().MostRecentBefore(
        tweet.time, ctx.news_window.rows());
    if (idx.size() < 10) continue;
    ++shown;

    // Topical cosine between each headline embedding and the tweet
    // embedding — the signal attention should track. PV-DBOW vectors
    // share a dominant corpus direction, so center on the window mean
    // before comparing (the learned Query/Key projections do the
    // equivalent inside the attention block).
    Vec mean_embed(ctx.news_window.cols(), 0.0);
    for (size_t r = 0; r < idx.size(); ++r) {
      Axpy(1.0, ctx.news_window.RowVec(r), &mean_embed);
    }
    Scale(1.0 / static_cast<double>(idx.size()), &mean_embed);
    const Vec tweet_centered = Sub(ctx.embedding, mean_embed);
    std::vector<std::pair<double, size_t>> sim(idx.size());
    for (size_t r = 0; r < idx.size(); ++r) {
      sim[r] = {CosineSimilarity(
                    Sub(ctx.news_window.RowVec(r), mean_embed),
                    tweet_centered),
                r};
    }
    std::sort(sim.rbegin(), sim.rend());
    std::printf(
        "\ntweet #%zu (%s, topic %zu, %s): %zu headlines in window\n",
        ctx.tweet_id, world.hashtags()[tweet.hashtag].tag.c_str(), topic,
        tweet.is_hateful ? "hateful" : "non-hate", idx.size());
    for (size_t k = 0; k < 3; ++k) {
      const size_t r = sim[k].second;
      const auto& article = world.news().articles()[idx[r]];
      std::string headline;
      for (size_t w = 0; w < std::min<size_t>(6, article.tokens.size());
           ++w) {
        headline += article.tokens[w] + " ";
      }
      std::printf(
          "  top-aligned headline (cos %.2f, topic %zu, %s match): %s...\n",
          sim[k].first, article.topic,
          article.topic == topic ? "topical" : "off-topic",
          headline.c_str());
    }
  }
  return 0;
}
