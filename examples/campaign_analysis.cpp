// Campaign analysis: the exploratory side of the paper (Figures 1-3)
// packaged as an analyst workflow — characterize how a hashtag campaign
// spreads, whether its dynamics look organic or echo-chamber driven, and
// how exposure (susceptible users) evolves.

#include <algorithm>
#include <cstdio>

#include "common/string_util.h"
#include "common/table.h"
#include "datagen/world.h"
#include "graph/generators.h"

using namespace retina;

int main() {
  datagen::WorldConfig config;
  config.scale = 0.2;
  config.num_users = 4000;
  config.history_length = 10;
  const datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(config, 7);

  // ---- Network overview ----------------------------------------------------
  const auto degree = graph::ComputeDegreeStats(world.network());
  std::printf(
      "network: %zu users, %zu follow edges, mean followers %.1f, top-1%% "
      "share %.2f\n\n",
      world.network().NumNodes(), world.network().NumEdges(),
      degree.mean_followers, degree.top1pct_share);

  // ---- Per-campaign diffusion profile ---------------------------------------
  const auto stats = world.ComputeHashtagStats();
  TableWriter table("campaign profiles",
                    {"hashtag", "tweets", "avg RT", "%hate", "users-all",
                     "amplification"});
  std::vector<std::pair<double, size_t>> by_amp;
  for (size_t h = 0; h < stats.size(); ++h) {
    if (stats[h].tweets < 30) continue;
    // Amplification: engaged users per tweeting author.
    const double amp = stats[h].unique_authors > 0
                           ? static_cast<double>(stats[h].users_all) /
                                 static_cast<double>(stats[h].unique_authors)
                           : 0.0;
    by_amp.emplace_back(amp, h);
  }
  std::sort(by_amp.rbegin(), by_amp.rend());
  for (const auto& [amp, h] : by_amp) {
    table.AddRow({world.hashtags()[h].tag, std::to_string(stats[h].tweets),
                  FormatDouble(stats[h].avg_retweets, 2),
                  FormatDouble(stats[h].pct_hate, 1),
                  std::to_string(stats[h].users_all), FormatDouble(amp, 1)});
  }
  table.Print();

  // ---- Hate vs non-hate kinetics ---------------------------------------------
  const std::vector<double> grid = {30, 60, 240, 1440, 10080};
  const auto hate = world.DiffusionCurves(true, grid);
  const auto nonhate = world.DiffusionCurves(false, grid);
  std::printf("\ndiffusion kinetics (mean per cascade):\n");
  std::printf("  %-10s %-16s %-16s %-16s %-16s\n", "minutes", "RT(hate)",
              "RT(non-hate)", "susc(hate)", "susc(non-hate)");
  for (size_t g = 0; g < grid.size(); ++g) {
    std::printf("  %-10.0f %-16.2f %-16.2f %-16.1f %-16.1f\n", grid[g],
                hate[g].mean_retweets, nonhate[g].mean_retweets,
                hate[g].mean_susceptible, nonhate[g].mean_susceptible);
  }

  // ---- Echo-chamber witness -----------------------------------------------------
  // Fraction of hateful retweets delivered by hate-prone users.
  size_t hate_rts = 0, hate_rts_by_prone = 0;
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    if (!world.tweets()[i].is_hateful) continue;
    for (const auto& rt : world.cascades()[i].retweets) {
      ++hate_rts;
      hate_rts_by_prone += world.users()[rt.user].echo_community >= 0;
    }
  }
  std::printf(
      "\necho chamber: %.0f%% of hateful-cascade retweets come from "
      "hate-prone accounts (%.0f%% of the population)\n",
      hate_rts > 0 ? 100.0 * static_cast<double>(hate_rts_by_prone) /
                         static_cast<double>(hate_rts)
                   : 0.0,
      100.0 * world.config().hater_fraction);
  return 0;
}
