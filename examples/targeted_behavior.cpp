// Targeted-behavior generalization — the paper's conclusion suggests
// "replacing hate speech with any other targeted phenomenon like
// fraudulent [or] abusive behavior". Nothing in the pipeline is specific
// to hate: the lexicon is an arbitrary term dictionary, the propensity a
// per-topic behavioural rate, and the echo community any coordinated
// group. This example re-reads the same machinery as a *fraud-campaign*
// detector: "hate-prone users" become scam rings, the lexicon becomes
// scam-phrase markers, and the task becomes "will this account post
// fraudulent content under this trending hashtag".

#include <algorithm>
#include <cstdio>

#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"
#include "ml/decision_tree.h"
#include "ml/metrics.h"

using namespace retina;

int main() {
  // Configure the generic "targeted behaviour" channel as a fraud ring:
  // fewer, more coordinated offenders pushing scam content during news
  // bursts (scams chase attention spikes).
  datagen::WorldConfig config;
  config.scale = 0.2;
  config.num_users = 2500;
  config.hater_fraction = 0.05;          // smaller rings
  config.organized_spreader_rate = 0.7;  // tighter coordination
  config.exo_coupling = 1.8;             // stronger burst-chasing
  datagen::SyntheticWorld world =
      datagen::SyntheticWorld::Generate(config, 321);
  if (!hatedetect::AnnotateWorld(&world, {}).ok()) return 1;

  size_t flagged = 0;
  for (const auto& tw : world.tweets()) flagged += tw.is_hateful;
  std::printf(
      "world: %zu posts, %zu flagged as fraudulent (%.1f%%), %zu accounts "
      "in coordinated rings\n",
      world.tweets().size(), flagged,
      100.0 * static_cast<double>(flagged) /
          static_cast<double>(world.tweets().size()),
      [&] {
        size_t n = 0;
        for (const auto& u : world.users()) n += (u.echo_community >= 0);
        return n;
      }());

  core::FeatureConfig fc;
  fc.history_tfidf_dim = 150;
  fc.news_tfidf_dim = 150;
  fc.tweet_tfidf_dim = 150;
  fc.news_window = 30;
  auto fx = core::FeatureExtractor::Build(world, fc);
  if (!fx.ok()) return 1;
  const core::FeatureExtractor extractor = std::move(fx).ValueOrDie();

  // Same Section IV pipeline, different target semantics.
  core::HateGenTaskOptions opts;
  opts.min_news = 30;
  auto task = core::BuildHateGenTask(extractor, opts);
  if (!task.ok()) {
    std::fprintf(stderr, "%s\n", task.status().ToString().c_str());
    return 1;
  }
  ml::DecisionTreeOptions topts;
  topts.max_depth = 5;
  ml::DecisionTree model(topts);
  auto eval = core::RunHateGenPipeline(task.ValueOrDie(), &model,
                                       core::ProcVariant::kDownsample, 9);
  if (!eval.ok()) return 1;
  std::printf(
      "fraud-generation prediction (same features, same model): macro-F1 "
      "%.2f  AUC %.2f\n",
      eval.ValueOrDie().macro_f1, eval.ValueOrDie().auc);

  // Ring detection by diffusion signature: coordinated content reaches
  // more retweets from fewer exposed accounts.
  const std::vector<double> grid = {60, 1440, 20160};
  const auto fraud = world.DiffusionCurves(true, grid);
  const auto organic = world.DiffusionCurves(false, grid);
  std::printf(
      "diffusion signature: fraudulent posts average %.1f retweets from "
      "%.0f exposed accounts; organic posts %.1f from %.0f — the "
      "coordination fingerprint the paper identifies for hate also "
      "flags fraud rings.\n",
      fraud.back().mean_retweets, fraud.back().mean_susceptible,
      organic.back().mean_retweets, organic.back().mean_susceptible);
  return 0;
}
