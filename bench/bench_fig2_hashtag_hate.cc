// Figure 2 reproduction: distribution of hateful vs non-hate tweets per
// hashtag (scale 0..1). The paper's point: hatefulness varies strongly
// across hashtags, including between hashtags that share a theme.

#include <algorithm>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  const BenchFlags flags = ParseFlags(argc, argv, 0.25, 5000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, 8,
                                    /*build_features=*/false);
  const auto& world = bench.world;
  const auto stats = world.ComputeHashtagStats();

  // Sort descending by realized hate fraction, like the figure's x-axis.
  std::vector<size_t> order(stats.size());
  for (size_t h = 0; h < order.size(); ++h) order[h] = h;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return stats[a].pct_hate > stats[b].pct_hate;
  });

  std::printf("Figure 2 — hate fraction per hashtag (bar series)\n");
  TableWriter table("", {"hashtag", "theme", "hate-frac(paper)",
                         "hate-frac(ours)", "bar"});
  for (size_t h : order) {
    const auto& info = world.hashtags()[h];
    const double frac = stats[h].pct_hate / 100.0;
    const int bar_len = static_cast<int>(frac * 200.0);
    table.AddRow({info.tag, std::to_string(info.topic),
                  Fmt(info.target_pct_hate / 100.0, 3), Fmt(frac, 3),
                  std::string(static_cast<size_t>(bar_len), '#')});
  }
  table.Print();

  // Theme-sharing tags still differ (the paper's #jamia* example).
  auto frac_of = [&](const char* tag) {
    for (size_t h = 0; h < stats.size(); ++h) {
      if (world.hashtags()[h].tag == tag) return stats[h].pct_hate;
    }
    return -1.0;
  };
  std::printf(
      "\nShape check: same-theme tags with different hate levels "
      "(#jamiaunderattack %.1f%% vs #jamiaviolence %.1f%% vs #JamiaCCTV "
      "%.1f%%)\n",
      frac_of("#jamiaunderattack"), frac_of("#jamiaviolence"),
      frac_of("#JamiaCCTV"));
  return 0;
}
