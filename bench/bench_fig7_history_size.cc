// Figure 7 reproduction: RETINA macro-F1 (static & dynamic) as the number
// of history tweets per user varies from 10 to 50. Paper shape:
// performance rises from 10 to 30 history tweets, then flattens or drops.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.05, 1500);
  // Long histories so the 50-tweet setting is real data, not truncation.
  BenchWorld bench = MakeBenchWorld(flags, 150, 40, /*history_length=*/55);

  std::printf("Figure 7 — macro-F1 vs user-history size\n");
  TableWriter table("", {"history", "RETINA-S", "RETINA-D"});
  std::vector<double> static_f1s, dynamic_f1s;
  for (const size_t history : {10u, 20u, 30u, 40u, 50u}) {
    Stopwatch timer;
    bench.extractor->SetHistorySize(history);
    RetweetTaskOptions opts;
    opts.max_candidates = 30;
    auto task_result = BuildRetweetTask(*bench.extractor, opts);
    if (!task_result.ok()) return 1;
    const RetweetTask& task = task_result.ValueOrDie();

    RetinaOptions sopts;
    sopts.hidden = 48;
    sopts.epochs = 3;
    Retina retina_s(task.user_dim, task.content_dim, task.embed_dim,
                    task.NumIntervals(), sopts);
    if (!retina_s.Train(task).ok()) return 1;
    const double f1_s =
        EvaluateBinary(task.test, retina_s.ScoreCandidates(task, task.test))
            .macro_f1;

    RetinaOptions dopts = sopts;
    dopts.dynamic = true;
    dopts.use_adam = false;
    dopts.learning_rate = 1e-3;
    dopts.lambda = 2.5;
    Retina retina_d(task.user_dim, task.content_dim, task.embed_dim,
                    task.NumIntervals(), dopts);
    if (!retina_d.Train(task).ok()) return 1;
    const double f1_d =
        EvaluateBinary(task.test, retina_d.ScoreCandidates(task, task.test))
            .macro_f1;

    table.AddRow({std::to_string(history), Fmt(f1_s, 3), Fmt(f1_d, 3)});
    static_f1s.push_back(f1_s);
    dynamic_f1s.push_back(f1_d);
    std::fprintf(stderr, "[bench] history=%zu done (%.1fs)\n", history,
                 timer.ElapsedSeconds());
  }
  table.Print();

  // Shape: 30 >= 10, and no large gain beyond 30.
  std::printf(
      "\nShape checks (paper Figure 7): gains from 10 -> 30 history tweets "
      "(static %.3f -> %.3f: %s), plateau after 30 (max beyond-30 gain "
      "%.3f)\n",
      static_f1s[0], static_f1s[2],
      static_f1s[2] + 0.01 >= static_f1s[0] ? "yes" : "NO",
      std::max(static_f1s[3], static_f1s[4]) - static_f1s[2]);
  return 0;
}
