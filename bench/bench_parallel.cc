// Thread-scaling bench for the retina::par execution layer.
//
// Times four representative workloads at 1/2/4/8 threads and writes
// BENCH_parallel.json with wall-clock times and speedups relative to one
// thread. Hardware metadata (hardware_concurrency) is recorded alongside:
// on a machine with fewer cores than the sweep's thread counts the upper
// entries measure oversubscription, not parallel speedup, and should be
// read together with that field.
//
// Flags: --reps=<n> repetitions per cell (default 3, median reported);
// --smoke shrinks every workload and forces reps=1 so the smoke_bench
// ctest target can exercise the full sweep quickly.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "core/retina.h"
#include "datagen/world.h"
#include "ml/random_forest.h"

namespace retina::bench {
namespace {

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

double MedianSeconds(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

core::RetweetTask MakeTrainTask(size_t n_tweets, size_t cands_per_tweet,
                                uint64_t seed) {
  core::RetweetTask task;
  task.user_dim = 24;
  task.content_dim = 16;
  task.embed_dim = 16;
  task.interval_edges = {0.0, 1.0, 8.0, 24.0, 72.0};
  Rng rng(seed);
  const size_t n_intervals = task.NumIntervals();
  for (size_t t = 0; t < n_tweets; ++t) {
    core::TweetContext ctx;
    ctx.tweet_id = t;
    ctx.content = Vec(task.content_dim);
    for (double& v : ctx.content) v = rng.Normal();
    ctx.embedding = Vec(task.embed_dim);
    for (double& v : ctx.embedding) v = rng.Normal();
    ctx.news_window = Matrix(12, task.embed_dim);
    for (double& v : ctx.news_window.data()) v = rng.Normal();
    task.tweets.push_back(std::move(ctx));
    for (size_t k = 0; k < cands_per_tweet; ++k) {
      core::RetweetCandidate cand;
      cand.tweet_pos = t;
      cand.user = static_cast<datagen::NodeId>(k);
      cand.label = (k % 3 == 0) ? 1 : 0;
      cand.interval_labels.assign(n_intervals, 0);
      if (cand.label == 1) cand.interval_labels[k % n_intervals] = 1;
      cand.user_features = Vec(task.user_dim);
      for (double& v : cand.user_features) v = rng.Normal();
      task.train.push_back(std::move(cand));
    }
  }
  // Minimal test split so Train's preconditions hold if reused.
  task.test.push_back(task.train.back());
  return task;
}

double TimeRetinaTrain(const core::RetweetTask& task, size_t hidden) {
  core::RetinaOptions opts;
  opts.hidden = hidden;
  opts.epochs = 2;
  opts.seed = 5;
  core::Retina model(task.user_dim, task.content_dim, task.embed_dim,
                     task.NumIntervals(), opts);
  Stopwatch sw;
  if (!model.Train(task).ok()) return -1.0;
  return sw.ElapsedSeconds();
}

double TimeRandomForestFit(const Matrix& X, const std::vector<int>& y,
                           size_t n_estimators) {
  ml::RandomForestOptions opts;
  opts.n_estimators = n_estimators;
  opts.seed = 17;
  ml::RandomForest forest(opts);
  Stopwatch sw;
  if (!forest.Fit(X, y).ok()) return -1.0;
  return sw.ElapsedSeconds();
}

double TimeWorldGenerate(uint64_t seed) {
  datagen::WorldConfig config;
  config.scale = 0.03;
  config.num_users = 800;
  config.history_length = 10;
  config.news_per_day = 30.0;
  Stopwatch sw;
  const auto world = datagen::SyntheticWorld::Generate(config, seed);
  return world.NumUsers() == 800 ? sw.ElapsedSeconds() : -1.0;
}

// Monte-Carlo-flood-shaped workload: per-stream random walks reduced in
// chunk order, the same structure as SirModel::ScoreCandidates.
double TimeMonteCarlo(size_t n_sims) {
  Stopwatch sw;
  const double total = par::ParallelReduce<double>(
      n_sims, 1, 0.0,
      [&](const par::ChunkRange& chunk) {
        double acc = 0.0;
        for (size_t sim = chunk.begin; sim < chunk.end; ++sim) {
          Rng rng = Rng::Stream(99, sim);
          double x = 0.0;
          for (int step = 0; step < 20000; ++step) {
            x += rng.Bernoulli(0.3) ? rng.Uniform() : -rng.Uniform();
          }
          acc += x;
        }
        return acc;
      },
      [](double a, double b) { return a + b; });
  const double secs = sw.ElapsedSeconds();
  return total == total ? secs : -1.0;  // keep the reduction observable
}

}  // namespace
}  // namespace retina::bench

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  int reps = 3;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (smoke) reps = 1;
  if (reps < 1) reps = 1;

  const core::RetweetTask task =
      smoke ? MakeTrainTask(6, 16, 11) : MakeTrainTask(24, 48, 11);
  const size_t hidden = smoke ? 16 : 32;
  const size_t n_trees = smoke ? 8 : 40;
  const size_t n_sims = smoke ? 64 : 512;
  Rng rng(3);
  const size_t n = smoke ? 300 : 1500, d = 12;
  Matrix X(n, d);
  std::vector<int> y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) {
      X(i, j) = rng.Normal();
      s += X(i, j);
    }
    y[i] = s > 0.0 ? 1 : 0;
  }

  struct Workload {
    const char* name;
    std::function<double()> run;
  };
  const std::vector<Workload> workloads = {
      {"retina_train", [&] { return TimeRetinaTrain(task, hidden); }},
      {"random_forest_fit",
       [&] { return TimeRandomForestFit(X, y, n_trees); }},
      {"monte_carlo_floods", [&] { return TimeMonteCarlo(n_sims); }},
      {"world_generate", [] { return TimeWorldGenerate(77); }},
  };

  // times[w][t] = median seconds for workload w at kThreadCounts[t].
  std::vector<std::vector<double>> times(workloads.size());
  for (size_t w = 0; w < workloads.size(); ++w) {
    for (size_t threads : kThreadCounts) {
      par::SetNumThreads(threads);
      std::vector<double> samples;
      for (int r = 0; r < reps; ++r) samples.push_back(workloads[w].run());
      times[w].push_back(MedianSeconds(std::move(samples)));
      std::printf("%-20s threads=%zu  %8.4f s\n", workloads[w].name, threads,
                  times[w].back());
    }
  }
  par::SetNumThreads(par::DefaultNumThreads());

  const char* out_path = "BENCH_parallel.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"thread_counts\": [1, 2, 4, 8],\n");
  std::fprintf(f, "  \"workloads\": {\n");
  for (size_t w = 0; w < workloads.size(); ++w) {
    std::fprintf(f, "    \"%s\": {\n      \"seconds\": [", workloads[w].name);
    for (size_t t = 0; t < times[w].size(); ++t) {
      std::fprintf(f, "%s%.6f", t ? ", " : "", times[w][t]);
    }
    std::fprintf(f, "],\n      \"speedup_vs_1\": [");
    for (size_t t = 0; t < times[w].size(); ++t) {
      const double s = times[w][t] > 0.0 ? times[w][0] / times[w][t] : 0.0;
      std::fprintf(f, "%s%.3f", t ? ", " : "", s);
    }
    std::fprintf(f, "]\n    }%s\n", w + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
