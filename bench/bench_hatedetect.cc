// Section VI-B reproduction: annotation reliability and hate-detector
// quality. Paper values: Krippendorff alpha 0.58; fine-tuned Davidson
// model AUC 0.85 / macro-F1 0.59; pre-trained (out-of-domain) Davidson
// 0.79 / 0.48.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  const BenchFlags flags = ParseFlags(argc, argv, 0.25, 5000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, 10,
                                    /*build_features=*/false);
  const auto& report = bench.annotation;

  std::printf("Section VI-B — hate detection & annotation pipeline\n");
  TableWriter table("", {"quantity", "paper", "ours"});
  table.AddRow({"gold-annotated tweets", "17877",
                std::to_string(report.gold_tweets)});
  table.AddRow({"Krippendorff's alpha", "0.58",
                Fmt(report.krippendorff_alpha)});
  table.AddRow({"fine-tuned Davidson AUC", "0.85", Fmt(report.finetuned_auc)});
  table.AddRow({"fine-tuned Davidson macro-F1", "0.59",
                Fmt(report.finetuned_macro_f1)});
  table.AddRow({"pre-trained Davidson AUC", "0.79",
                Fmt(report.pretrained_auc)});
  table.AddRow({"pre-trained Davidson macro-F1", "0.48",
                Fmt(report.pretrained_macro_f1)});
  table.AddRow({"machine/gold disagreement", "n/a",
                Fmt(report.machine_disagreement)});
  table.Print();
  std::printf(
      "\nShape check: fine-tuned > pre-trained on both metrics: %s\n",
      (report.finetuned_auc >= report.pretrained_auc &&
       report.finetuned_macro_f1 >= report.pretrained_macro_f1)
          ? "yes"
          : "NO");
  return 0;
}
