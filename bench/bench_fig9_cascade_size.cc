// Figure 9 reproduction: RETINA-S macro-F1 as a function of the actual
// cascade size, against the overall macro-F1. Paper shape: performance
// improves with cascade size.

#include <algorithm>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.08, 2500);
  BenchWorld bench = MakeBenchWorld(flags, 200, 60);

  RetweetTaskOptions opts;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  RetinaOptions sopts;
  sopts.hidden = 64;
  sopts.epochs = 4;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), sopts);
  if (!model.Train(task).ok()) return 1;
  const Vec scores = model.ScoreCandidates(task, task.test);
  const double overall =
      EvaluateBinary(task.test, scores).macro_f1;

  // Bucket test candidates by the root cascade size.
  struct Bucket {
    size_t lo, hi;  // [lo, hi)
    std::vector<int> y_true, y_pred;
  };
  std::vector<Bucket> buckets = {
      {2, 5, {}, {}},   {5, 10, {}, {}},  {10, 20, {}, {}},
      {20, 40, {}, {}}, {40, 1000, {}, {}}};
  for (size_t i = 0; i < task.test.size(); ++i) {
    const size_t size = task.tweets[task.test[i].tweet_pos].cascade_size;
    for (Bucket& b : buckets) {
      if (size >= b.lo && size < b.hi) {
        b.y_true.push_back(task.test[i].label);
        b.y_pred.push_back(scores[i] >= 0.5 ? 1 : 0);
      }
    }
  }

  std::printf("Figure 9 — RETINA-S macro-F1 vs cascade size (overall %.3f)\n",
              overall);
  TableWriter table("", {"cascade size", "candidates", "macro-F1"});
  Vec bucket_f1;
  for (Bucket& b : buckets) {
    if (b.y_true.empty()) continue;
    const double f1 = ml::MacroF1(b.y_true, b.y_pred);
    bucket_f1.push_back(f1);
    table.AddRow({std::to_string(b.lo) + "-" + std::to_string(b.hi),
                  std::to_string(b.y_true.size()), Fmt(f1, 3)});
  }
  table.Print();
  if (bucket_f1.size() >= 2) {
    std::printf(
        "\nShape check (paper Figure 9): macro-F1 rises with cascade size "
        "(last bucket %.3f vs first %.3f -> %s)\n",
        bucket_f1.back(), bucket_f1.front(),
        bucket_f1.back() >= bucket_f1.front() ? "yes" : "NO");
  }
  return 0;
}
