// Serving-throughput bench for the batched sparse scoring engine.
//
// Replays a request stream ("score this candidate pool for this root
// tweet") against a trained static RETINA through three ScoringEngine
// configurations:
//   per_candidate   — stateless server: every feature vector rebuilt from
//                     the raw world, one model forward per candidate
//   batched         — same feature work, but one GEMM-batched forward per
//                     request (shared attention, blocked MatMul layers)
//   batched_cached  — batched forward plus the per-user / per-tweet LRUs
// and reports candidates/sec per mode at several candidate-pool sizes.
// All three modes produce bit-identical scores (asserted here per run);
// the cached mode is timed on a warm cache — the steady state of a server
// whose active-user working set fits the LRU — after an untimed warming
// pass. Hardware metadata is recorded like BENCH_parallel.json: on a
// single-core container the batched-vs-per-candidate ratio is pure
// algorithmic speedup, not parallelism.
//
// Flags: bench_common.h standard set; --reps=<n> (default 3, median);
// --model=<dir> loads a saved scoring bundle from <dir> instead of
// training (and saves one there after training when none exists), so
// repeated bench runs skip the training phase.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/stopwatch.h"
#include "core/model_store.h"
#include "core/scoring_engine.h"

namespace retina::bench {
namespace {

double MedianSeconds(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

struct Request {
  datagen::Tweet tweet;
  std::vector<core::NodeId> users;
};

// A request stream over the task's tweets with a Zipf-flavored candidate
// mix: a shared "active" user pool most requests draw from (these hit a
// warm LRU) plus per-request uniform draws. Deterministic in the seed.
std::vector<Request> MakeRequests(const datagen::SyntheticWorld& world,
                                  const core::RetweetTask& task,
                                  size_t n_requests, size_t pool_size,
                                  uint64_t seed) {
  Rng rng(seed);
  const size_t n_users = world.NumUsers();
  const size_t active = std::max<size_t>(1, n_users / 4);
  std::vector<Request> requests;
  requests.reserve(n_requests);
  for (size_t r = 0; r < n_requests; ++r) {
    Request req;
    req.tweet =
        world.tweets()[task.tweets[r % task.tweets.size()].tweet_id];
    req.users.reserve(pool_size);
    for (size_t k = 0; k < pool_size; ++k) {
      const bool hot = rng.Bernoulli(0.8);
      const size_t limit = hot ? active : n_users;
      req.users.push_back(static_cast<core::NodeId>(rng.UniformInt(limit)));
    }
    requests.push_back(std::move(req));
  }
  return requests;
}

double RunStream(core::ScoringEngine* engine,
                 const std::vector<Request>& requests, Vec* scores_out) {
  scores_out->clear();
  Stopwatch sw;
  for (const Request& req : requests) {
    const Vec scores = engine->ScoreTweet(req.tweet, req.users);
    scores_out->insert(scores_out->end(), scores.begin(), scores.end());
  }
  return sw.ElapsedSeconds();
}

}  // namespace
}  // namespace retina::bench

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  int reps = 3;
  std::string model_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
    if (std::strncmp(argv[i], "--model=", 8) == 0) model_dir = argv[i] + 8;
  }
  if (reps < 1) reps = 1;

  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.04,
                                /*default_users=*/1200);
  BenchWorld bw = MakeBenchWorld(flags, /*feature_dim=*/200,
                                 /*news_window=*/40);

  core::RetweetTaskOptions topts;
  topts.min_news = flags.smoke ? 15 : 40;
  topts.seed = flags.seed;
  auto task_result = core::BuildRetweetTask(*bw.extractor, topts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "task build failed: %s\n",
                 task_result.status().ToString().c_str());
    return 1;
  }
  const core::RetweetTask& task = task_result.ValueOrDie();

  // Model + extractor either restored from a bundle or trained in-process;
  // the restored pair scores bit-identically, so the modes below can't
  // tell the difference.
  const core::Retina* model = nullptr;
  const core::FeatureExtractor* extractor = bw.extractor.get();
  core::LoadedScoringBundle bundle;
  std::unique_ptr<core::Retina> trained;
  if (!model_dir.empty()) {
    auto bundle_result = core::LoadScoringBundle(model_dir, bw.world);
    if (bundle_result.ok()) {
      bundle = std::move(bundle_result).ValueOrDie();
      model = bundle.model.get();
      extractor = bundle.extractor.get();
      std::fprintf(stderr, "[bench] loaded bundle from %s\n",
                   model_dir.c_str());
    } else {
      std::fprintf(stderr, "[bench] no usable bundle at %s (%s); training\n",
                   model_dir.c_str(),
                   bundle_result.status().ToString().c_str());
    }
  }
  if (model == nullptr) {
    Stopwatch timer;
    core::RetinaOptions ropts;
    ropts.epochs = 2;
    ropts.seed = flags.seed;
    trained = std::make_unique<core::Retina>(task.user_dim, task.content_dim,
                                             task.embed_dim,
                                             task.NumIntervals(), ropts);
    if (!trained->Train(task).ok()) {
      std::fprintf(stderr, "training failed\n");
      return 1;
    }
    std::fprintf(stderr, "[bench] RETINA-S trained (%.1fs)\n",
                 timer.ElapsedSeconds());
    model = trained.get();
    if (!model_dir.empty()) {
      core::ScoringBundleMeta meta;
      meta.task_seed = flags.seed;
      const Status save_st = core::SaveScoringBundle(model_dir, *trained,
                                                     *bw.extractor, meta);
      if (save_st.ok()) {
        std::fprintf(stderr, "[bench] bundle saved to %s\n",
                     model_dir.c_str());
      } else {
        std::fprintf(stderr, "[bench] bundle save failed: %s\n",
                     save_st.ToString().c_str());
      }
    }
  }

  const std::vector<size_t> pool_sizes =
      flags.smoke ? std::vector<size_t>{4, 8}
                  : std::vector<size_t>{8, 32, 96};
  const size_t n_requests = flags.smoke ? 6 : 40;

  struct Mode {
    const char* name;
    bool batched;
    bool cached;
  };
  const Mode modes[] = {{"per_candidate", false, false},
                        {"batched", true, false},
                        {"batched_cached", true, true}};

  // rate[p][m] = median candidates/sec for pool_sizes[p], modes[m].
  std::vector<std::vector<double>> rate(pool_sizes.size());
  for (size_t p = 0; p < pool_sizes.size(); ++p) {
    const auto requests = MakeRequests(bw.world, task, n_requests,
                                       pool_sizes[p], flags.seed ^ 0xABCDULL);
    const double total_cands =
        static_cast<double>(n_requests * pool_sizes[p]);
    Vec reference;
    for (const Mode& mode : modes) {
      core::ScoringEngineOptions eopts;
      eopts.batched = mode.batched;
      eopts.cache_features = mode.cached;
      core::ScoringEngine engine(model, extractor, eopts);
      Vec scores;
      if (mode.cached) {
        RunStream(&engine, requests, &scores);  // untimed warming pass
      }
      std::vector<double> samples;
      for (int r = 0; r < reps; ++r) {
        samples.push_back(RunStream(&engine, requests, &scores));
      }
      // The whole point is speed *without* changing results: every mode
      // must reproduce the per-candidate scores bit for bit.
      if (reference.empty()) {
        reference = scores;
      } else if (scores != reference) {
        std::fprintf(stderr, "FATAL: mode %s diverged from per-candidate\n",
                     mode.name);
        return 1;
      }
      const double secs = MedianSeconds(std::move(samples));
      rate[p].push_back(secs > 0.0 ? total_cands / secs : 0.0);
      std::printf("pool=%-4zu %-15s %10.0f candidates/sec\n", pool_sizes[p],
                  mode.name, rate[p].back());
    }
  }

  const char* out_path = "BENCH_serving.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"requests\": %zu,\n", n_requests);
  std::fprintf(f, "  \"scale\": %.4f,\n", flags.scale);
  std::fprintf(f, "  \"users\": %zu,\n", flags.users);
  std::fprintf(f, "  \"pool_sizes\": [");
  for (size_t p = 0; p < pool_sizes.size(); ++p) {
    std::fprintf(f, "%s%zu", p ? ", " : "", pool_sizes[p]);
  }
  std::fprintf(f, "],\n  \"modes\": {\n");
  for (size_t m = 0; m < 3; ++m) {
    std::fprintf(f, "    \"%s\": {\n      \"candidates_per_sec\": [",
                 modes[m].name);
    for (size_t p = 0; p < pool_sizes.size(); ++p) {
      std::fprintf(f, "%s%.1f", p ? ", " : "", rate[p][m]);
    }
    std::fprintf(f, "],\n      \"speedup_vs_per_candidate\": [");
    for (size_t p = 0; p < pool_sizes.size(); ++p) {
      const double s = rate[p][0] > 0.0 ? rate[p][m] / rate[p][0] : 0.0;
      std::fprintf(f, "%s%.3f", p ? ", " : "", s);
    }
    std::fprintf(f, "]\n    }%s\n", m + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
