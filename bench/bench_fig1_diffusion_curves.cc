// Figure 1 reproduction: temporal growth of retweet cascades (a) and of
// the susceptible user set (b), hateful vs non-hate roots. The paper's
// qualitative shape: hateful tweets collect more retweets, concentrated in
// the first hours, while exposing fewer susceptible users; non-hate spread
// is slower but sustained.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  const BenchFlags flags = ParseFlags(argc, argv, 0.25, 5000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, 8,
                                    /*build_features=*/false);
  const auto& world = bench.world;

  const std::vector<double> grid_minutes = {15,   30,   60,    120,  240,
                                            480,  1440, 2880,  5760, 10080,
                                            20160};
  const auto hate = world.DiffusionCurves(true, grid_minutes);
  const auto nonhate = world.DiffusionCurves(false, grid_minutes);

  std::printf("Figure 1 — diffusion dynamics, hateful vs non-hate roots\n");
  TableWriter table("", {"minutes", "retweets(hate)", "retweets(non-hate)",
                         "susceptible(hate)", "susceptible(non-hate)"});
  for (size_t g = 0; g < grid_minutes.size(); ++g) {
    table.AddRow({Fmt(grid_minutes[g], 0), Fmt(hate[g].mean_retweets),
                  Fmt(nonhate[g].mean_retweets),
                  Fmt(hate[g].mean_susceptible),
                  Fmt(nonhate[g].mean_susceptible)});
  }
  table.Print();

  const double hate_early =
      hate[2].mean_retweets / std::max(1e-9, hate.back().mean_retweets);
  const double nonhate_early = nonhate[2].mean_retweets /
                               std::max(1e-9, nonhate.back().mean_retweets);
  std::printf("\nShape checks (paper Figure 1):\n");
  std::printf("  (a) hateful cascades larger: %.2f vs %.2f -> %s\n",
              hate.back().mean_retweets, nonhate.back().mean_retweets,
              hate.back().mean_retweets > nonhate.back().mean_retweets
                  ? "yes"
                  : "NO");
  std::printf("  (b) hateful susceptible set smaller: %.1f vs %.1f -> %s\n",
              hate.back().mean_susceptible, nonhate.back().mean_susceptible,
              hate.back().mean_susceptible < nonhate.back().mean_susceptible
                  ? "yes"
                  : "NO");
  std::printf(
      "  early growth (share of final retweets in first hour): %.2f vs "
      "%.2f -> hate faster: %s\n",
      hate_early, nonhate_early, hate_early > nonhate_early ? "yes" : "NO");
  return 0;
}
