// Figure 6 reproduction: MAP@20 for hateful vs non-hate root tweets,
// RETINA-S / RETINA-D / TopoLSTM. Paper values: TopoLSTM 0.43 (hate) vs
// 0.59 (non-hate) — it fails on hate diffusion; RETINA-D 0.80 vs 0.74,
// RETINA-S 0.54 vs 0.56 — RETINA holds (or improves) on hateful content.

#include "bench/bench_common.h"
#include "diffusion/neural_baselines.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.08, 2500);
  BenchWorld bench = MakeBenchWorld(flags, 200, 60);

  RetweetTaskOptions opts;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  size_t hate_tweets = 0;
  for (const auto& t : task.tweets) hate_tweets += t.hateful;
  std::printf(
      "Figure 6 — MAP@20 split by root hatefulness (%zu hateful / %zu "
      "total cascades)\n",
      hate_tweets, task.tweets.size());

  RetinaOptions sopts;
  sopts.hidden = 64;
  sopts.epochs = 4;
  Retina retina_s(task.user_dim, task.content_dim, task.embed_dim,
                  task.NumIntervals(), sopts);
  if (!retina_s.Train(task).ok()) return 1;

  RetinaOptions dopts = sopts;
  dopts.dynamic = true;
  dopts.use_adam = false;
  dopts.learning_rate = 1e-3;
  dopts.lambda = 2.5;
  Retina retina_d(task.user_dim, task.content_dim, task.embed_dim,
                  task.NumIntervals(), dopts);
  if (!retina_d.Train(task).ok()) return 1;

  diffusion::NeuralDiffusionBaseline topo(
      &bench.world, diffusion::NeuralBaselineKind::kTopoLstm, {});
  if (!topo.Fit(task).ok()) return 1;

  struct Entry {
    const char* name;
    Vec scores;
    double paper_hate, paper_nonhate;
  };
  std::vector<Entry> entries;
  entries.push_back({"RETINA-D", retina_d.ScoreCandidates(task, task.test),
                     0.80, 0.74});
  entries.push_back({"RETINA-S", retina_s.ScoreCandidates(task, task.test),
                     0.54, 0.56});
  entries.push_back({"TopoLSTM", topo.ScoreCandidates(task, task.test),
                     0.43, 0.59});

  TableWriter table("", {"model", "hate(p)", "hate", "non-hate(p)",
                         "non-hate", "hate-gap"});
  double topo_gap = 0.0, retina_d_gap = 0.0;
  for (const Entry& e : entries) {
    const auto hq = MakeRankingQueries(task, task.test, e.scores, 1);
    const auto nq = MakeRankingQueries(task, task.test, e.scores, 0);
    const double hate_map = ml::MeanAveragePrecisionAtK(hq, 20);
    const double nonhate_map = ml::MeanAveragePrecisionAtK(nq, 20);
    table.AddRow({e.name, Fmt(e.paper_hate), Fmt(hate_map),
                  Fmt(e.paper_nonhate), Fmt(nonhate_map),
                  Fmt(hate_map - nonhate_map)});
    if (std::string(e.name) == "TopoLSTM") topo_gap = hate_map - nonhate_map;
    if (std::string(e.name) == "RETINA-D") {
      retina_d_gap = hate_map - nonhate_map;
    }
  }
  table.Print();
  std::printf(
      "\nShape check (paper): TopoLSTM degrades on hate (gap -0.16) while "
      "RETINA-D does not (gap +0.06). Ours: TopoLSTM gap %.2f, RETINA-D "
      "gap %.2f -> RETINA handles hate better: %s\n",
      topo_gap, retina_d_gap, retina_d_gap > topo_gap ? "yes" : "NO");
  return 0;
}
