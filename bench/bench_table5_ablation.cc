// Table V reproduction: feature-group ablation for the best
// hate-generation model (decision tree + downsampling). Paper rows:
//   All 0.65/0.74/0.66, All\History 0.56/0.59/0.64,
//   All\Endogen 0.61/0.68/0.64, All\Exogen 0.56/0.58/0.66,
//   All\Topic 0.65/0.74/0.66.

#include "bench/bench_common.h"

#include "ml/decision_tree.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.35, 4500);
  BenchWorld bench = MakeBenchWorld(flags);

  struct Row {
    const char* label;
    const char* group;  // nullptr = full model
    double paper_f1, paper_acc, paper_auc;
  };
  const Row rows[] = {
      {"All", nullptr, 0.65, 0.74, 0.66},
      {"All \\ History", "history", 0.56, 0.59, 0.64},
      {"All \\ Endogen", "endogenous", 0.61, 0.68, 0.64},
      {"All \\ Exogen", "exogenous", 0.56, 0.58, 0.66},
      {"All \\ Topic", "topic", 0.65, 0.74, 0.66},
  };

  std::printf(
      "Table V — feature ablation, Decision Tree + downsampling on gold "
      "test labels\n");
  TableWriter table("", {"features", "F1(p)", "F1", "ACC(p)", "ACC",
                         "AUC(p)", "AUC"});
  double full_f1 = 0.0, nohist_f1 = 1.0, noexo_f1 = 1.0;
  for (const Row& row : rows) {
    const FeatureMask mask =
        row.group == nullptr ? FeatureMask{} : FeatureMask::Without(row.group);
    HateGenTaskOptions opts;
    auto task = BuildHateGenTask(*bench.extractor, opts, mask);
    if (!task.ok()) {
      std::fprintf(stderr, "task failed: %s\n",
                   task.status().ToString().c_str());
      return 1;
    }
    // Average over three resampling seeds (the downsampled split is
    // small; a single draw is noisy).
    EvalResult r;
    for (int run = 0; run < 3; ++run) {
      ml::DecisionTreeOptions topts;
      topts.max_depth = 5;
      ml::DecisionTree tree(topts);
      auto result = RunHateGenPipeline(task.ValueOrDie(), &tree,
                                       ProcVariant::kDownsample,
                                       100 + 1000 * run);
      if (!result.ok()) {
        std::fprintf(stderr, "pipeline failed\n");
        return 1;
      }
      r.macro_f1 += result.ValueOrDie().macro_f1 / 3.0;
      r.accuracy += result.ValueOrDie().accuracy / 3.0;
      r.auc += result.ValueOrDie().auc / 3.0;
    }
    table.AddRow({row.label, Fmt(row.paper_f1), Fmt(r.macro_f1),
                  Fmt(row.paper_acc), Fmt(r.accuracy), Fmt(row.paper_auc),
                  Fmt(r.auc)});
    if (row.group == nullptr) full_f1 = r.macro_f1;
    if (row.group != nullptr && std::string(row.group) == "history") {
      nohist_f1 = r.macro_f1;
    }
    if (row.group != nullptr && std::string(row.group) == "exogenous") {
      noexo_f1 = r.macro_f1;
    }
  }
  table.Print();
  std::printf(
      "\nShape checks (paper): history and exogenous removals hurt most "
      "(0.65 -> 0.56); topic removal is neutral.\n");
  std::printf("Ours: All %.2f, \\History %.2f, \\Exogen %.2f -> "
              "history hurts: %s, exogenous hurts: %s\n",
              full_f1, nohist_f1, noexo_f1,
              nohist_f1 < full_f1 ? "yes" : "NO",
              noexo_f1 < full_f1 ? "yes" : "NO");
  return 0;
}
