// News-window ablation. Section VIII-B: "an ablation on news size gave
// best results at 60 for both static and dynamic models", while the
// feature-engineered baselines could not hold more than 15 headlines. This
// bench sweeps the attention window for static RETINA.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.06, 2000);
  // Build features with the largest window; smaller windows are prefixes
  // of the most-recent-first sequence.
  BenchWorld bench = MakeBenchWorld(flags, 200, 120);

  std::printf("News-window ablation for RETINA-S (paper optimum: 60)\n");
  TableWriter table("", {"window", "macro-F1", "ACC", "AUC", "MAP@20"});
  for (const size_t window : {5u, 15u, 30u, 60u, 120u}) {
    RetweetTaskOptions opts;
    opts.min_news = 40;
    auto task_result = BuildRetweetTask(*bench.extractor, opts);
    if (!task_result.ok()) return 1;
    RetweetTask task = std::move(task_result).ValueOrDie();
    // Truncate every tweet's news window to the ablated size.
    for (auto& ctx : task.tweets) {
      if (ctx.news_window.rows() > window) {
        Matrix truncated(window, ctx.news_window.cols());
        for (size_t r = 0; r < window; ++r) {
          truncated.SetRow(r, ctx.news_window.RowVec(r));
        }
        ctx.news_window = std::move(truncated);
      }
    }

    RetinaOptions ropts;
    ropts.hidden = 48;
    ropts.epochs = 3;
    Retina model(task.user_dim, task.content_dim, task.embed_dim,
                 task.NumIntervals(), ropts);
    if (!model.Train(task).ok()) return 1;
    const Vec scores = model.ScoreCandidates(task, task.test);
    const BinaryEval eval = EvaluateBinary(task.test, scores);
    const auto queries = MakeRankingQueries(task, task.test, scores);
    table.AddRow({std::to_string(window), Fmt(eval.macro_f1, 3),
                  Fmt(eval.accuracy, 3), Fmt(eval.auc, 3),
                  Fmt(ml::MeanAveragePrecisionAtK(queries, 20), 3)});
    std::fprintf(stderr, "[bench] window=%zu done\n", window);
  }
  table.Print();
  std::printf(
      "\nReading: the paper found a sweet spot at 60 headlines — too few "
      "starves the attention, too many dilutes it.\n");
  return 0;
}
