// Table VI reproduction: retweeter prediction. Feature-engineered
// baselines (with and without the exogenous news block — the paper's †
// rows), RETINA static/dynamic (± exogenous attention), the neural
// diffusion baselines (TopoLSTM / FOREST / HIDAN), and the rudimentary
// contagion models (SIR, General Threshold).
//
// Following Section VIII-B, the feature-engineered models consume at most
// 15 news headlines per tweet (the paper hit memory limits beyond that),
// while RETINA attends over the full 60-headline window.

#include <memory>

#include "bench/bench_common.h"
#include "diffusion/neural_baselines.h"
#include "diffusion/sir.h"
#include "diffusion/threshold.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "ml/metrics.h"
#include "ml/random_forest.h"
#include "ml/svm.h"

namespace {

using namespace retina;
using namespace retina::bench;
using namespace retina::core;

struct RowResult {
  std::string name;
  double f1 = -1, acc = -1, auc = -1, map20 = -1, hits20 = -1;
};

std::string Cell(double v) { return v < 0 ? "-" : Fmt(v); }

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv, 0.08, 2500);
  BenchWorld bench = MakeBenchWorld(flags, 300, 60);

  RetweetTaskOptions opts;
  // Larger candidate sets than the defaults so MAP@20 / HITS@20 do not
  // saturate (paper candidate sets are follower-scale).
  opts.negatives_per_tweet = 40;
  opts.max_candidates = 64;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "task failed: %s\n",
                 task_result.status().ToString().c_str());
    return 1;
  }
  const RetweetTask& task = task_result.ValueOrDie();
  std::printf(
      "Table VI — retweeter prediction (%zu cascades, train %zu / test %zu "
      "candidates)\n",
      task.tweets.size(), task.train.size(), task.test.size());

  std::vector<RowResult> rows;

  auto add_binary = [&](const std::string& name, const Vec& scores,
                        bool ranking) {
    RowResult row;
    row.name = name;
    const BinaryEval eval = EvaluateBinary(task.test, scores);
    row.f1 = eval.macro_f1;
    row.acc = eval.accuracy;
    row.auc = eval.auc;
    if (ranking) {
      const auto queries = MakeRankingQueries(task, task.test, scores);
      row.map20 = ml::MeanAveragePrecisionAtK(queries, 20);
      row.hits20 = ml::HitsAtK(queries, 20);
    }
    rows.push_back(row);
  };

  // ---- Feature-engineered baselines --------------------------------------
  {
    // 15-headline exogenous block per tweet (paper's memory ceiling),
    // plus the scalar tweet-news alignment features a linear model needs
    // to consume the exogenous signal.
    std::vector<Vec> news15(task.tweets.size());
    for (size_t t = 0; t < task.tweets.size(); ++t) {
      const auto& tw = bench.world.tweets()[task.tweets[t].tweet_id];
      news15[t] = bench.extractor->NewsTfIdfAverage(tw.time, 15);
      const Vec align = bench.extractor->NewsAlignmentFeatures(tw, 15);
      news15[t].insert(news15[t].end(), align.begin(), align.end());
    }
    const size_t news_dim = news15.front().size();

    auto make_row = [&](const RetweetCandidate& cand, bool exo) {
      Vec x = Concat(cand.user_features, task.tweets[cand.tweet_pos].content);
      if (exo) {
        const Vec& n = news15[cand.tweet_pos];
        x.insert(x.end(), n.begin(), n.end());
      } else {
        x.insert(x.end(), news_dim, 0.0);
      }
      return x;
    };

    // Subsampled training matrix (the full candidate set exceeds what the
    // paper's classical models could hold either).
    Rng rng(flags.seed ^ 0xC1A551CULL);
    std::vector<size_t> order(task.train.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    const size_t n_sub = std::min<size_t>(16000, order.size());

    const size_t dim = task.user_dim + task.content_dim + news_dim;
    for (const bool exo : {true, false}) {
      Matrix train_x(n_sub, dim);
      std::vector<int> train_y(n_sub);
      for (size_t i = 0; i < n_sub; ++i) {
        const auto& cand = task.train[order[i]];
        train_x.SetRow(i, make_row(cand, exo));
        train_y[i] = cand.label;
      }

      std::vector<std::unique_ptr<ml::BinaryClassifier>> models;
      {
        ml::LogisticRegressionOptions lopts;
        lopts.balanced_class_weight = true;
        models.push_back(std::make_unique<ml::LogisticRegression>(lopts));
      }
      {
        ml::DecisionTreeOptions topts;
        topts.max_depth = 8;
        models.push_back(std::make_unique<ml::DecisionTree>(topts));
      }
      {
        ml::RandomForestOptions ropts;
        ropts.n_estimators = 50;
        models.push_back(std::make_unique<ml::RandomForest>(ropts));
      }
      if (!exo) {
        // Linear SVC appears only as a no-exogenous row in Table VI.
        models.push_back(std::make_unique<ml::LinearSVM>());
      }
      if (exo) {
        // Diagnostic row (not in the paper): logistic regression on the
        // exogenous block alone, demonstrating that the news signal is
        // present and consumable by itself. In our world the user/peer
        // features are strong enough that the marginal gain of adding the
        // exogenous block is small — unlike the paper, whose no-exogenous
        // baselines sat at chance (see EXPERIMENTS.md).
        ml::LogisticRegressionOptions lopts;
        lopts.balanced_class_weight = true;
        auto exo_only = std::make_unique<ml::LogisticRegression>(lopts);
        Matrix exo_x(n_sub, news_dim);
        for (size_t i = 0; i < n_sub; ++i) {
          const auto& cand = task.train[order[i]];
          const Vec& n = news15[cand.tweet_pos];
          exo_x.SetRow(i, n);
        }
        if (exo_only->Fit(exo_x, train_y).ok()) {
          Vec scores(task.test.size());
          for (size_t i = 0; i < task.test.size(); ++i) {
            scores[i] =
                exo_only->PredictProba(news15[task.test[i].tweet_pos]);
          }
          add_binary("Logistic Regression [exo-only]", scores,
                     /*ranking=*/false);
        }
      }
      for (auto& model : models) {
        Stopwatch timer;
        if (!model->Fit(train_x, train_y).ok()) continue;
        Vec scores(task.test.size());
        for (size_t i = 0; i < task.test.size(); ++i) {
          scores[i] = model->PredictProba(make_row(task.test[i], exo));
        }
        std::string name = model->Name() == "SVM-l" ? "Linear SVC"
                           : model->Name() == "LogReg" ? "Logistic Regression"
                           : model->Name() == "Dec-Tree" ? "Decision Tree"
                                                         : model->Name();
        if (!exo) name += " [no-exo]";
        add_binary(name, scores, /*ranking=*/false);
        std::fprintf(stderr, "[bench] %s (%.1fs)\n", name.c_str(),
                     timer.ElapsedSeconds());
      }
    }
  }

  // ---- RETINA -------------------------------------------------------------
  for (const bool dynamic : {false, true}) {
    for (const bool exo : {true, false}) {
      Stopwatch timer;
      RetinaOptions ropts;
      ropts.hidden = 64;
      ropts.dynamic = dynamic;
      ropts.use_exogenous = exo;
      ropts.epochs = 4;
      if (dynamic) {
        ropts.use_adam = false;  // paper: SGD for the dynamic model
        ropts.learning_rate = 1e-3;
        ropts.lambda = 2.5;
      } else {
        ropts.use_adam = true;  // paper: Adam for the static model
        ropts.learning_rate = 1e-3;
        ropts.lambda = 2.0;
      }
      ropts.seed = flags.seed ^ (dynamic ? 0xD1 : 0x51) ^ (exo ? 0 : 0x100);
      Retina model(task.user_dim, task.content_dim, task.embed_dim,
                   task.NumIntervals(), ropts);
      if (!model.Train(task).ok()) continue;
      const Vec scores = model.ScoreCandidates(task, task.test);
      std::string name = dynamic ? "RETINA-D" : "RETINA-S";
      if (!exo) name += " [no-exo]";
      if (dynamic) {
        // The paper evaluates RETINA-D per (user, interval) sample
        // (P^{u_i}_j), while ranking metrics stay at the user level. The
        // decision threshold is calibrated on the training split because
        // the weighted loss inflates the probabilities.
        RowResult row;
        row.name = name;
        const double threshold =
            model.CalibrateCumulativeThreshold(task, task.train);
        const BinaryEval eval =
            model.EvaluateCumulative(task, task.test, threshold);
        row.f1 = eval.macro_f1;
        row.acc = eval.accuracy;
        row.auc = eval.auc;
        const auto queries = MakeRankingQueries(task, task.test, scores);
        row.map20 = ml::MeanAveragePrecisionAtK(queries, 20);
        row.hits20 = ml::HitsAtK(queries, 20);
        rows.push_back(row);
      } else {
        add_binary(name, scores, /*ranking=*/true);
      }
      std::fprintf(stderr, "[bench] %s (%.1fs)\n", name.c_str(),
                   timer.ElapsedSeconds());
    }
  }

  // ---- Neural diffusion baselines ------------------------------------------
  for (const auto kind :
       {diffusion::NeuralBaselineKind::kForest,
        diffusion::NeuralBaselineKind::kHidan,
        diffusion::NeuralBaselineKind::kTopoLstm}) {
    Stopwatch timer;
    diffusion::NeuralBaselineOptions nopts;
    diffusion::NeuralDiffusionBaseline model(&bench.world, kind, nopts);
    if (!model.Fit(task).ok()) continue;
    const Vec scores = model.ScoreCandidates(task, task.test);
    RowResult row;
    row.name = model.Name();
    const auto queries = MakeRankingQueries(task, task.test, scores);
    row.map20 = ml::MeanAveragePrecisionAtK(queries, 20);
    row.hits20 = ml::HitsAtK(queries, 20);
    rows.push_back(row);
    std::fprintf(stderr, "[bench] %s (%.1fs)\n", row.name.c_str(),
                 timer.ElapsedSeconds());
  }

  // ---- Rudimentary contagion models ------------------------------------------
  // Evaluated in the paper's regime: literature-default rates, infected /
  // activated set predicted over the whole population. Homogeneous
  // contagion floods past the true retweeter sets and both per-class F1
  // scores collapse (paper: 0.04).
  {
    diffusion::SirModel sir(&bench.world, {});
    RowResult row;
    row.name = "SIR";
    row.f1 = sir.FullPopulationMacroF1(task);
    rows.push_back(row);

    diffusion::ThresholdModel thresh(&bench.world, {});
    RowResult trow;
    trow.name = "Gen.Thresh.";
    trow.f1 = thresh.FullPopulationMacroF1(task);
    rows.push_back(trow);
  }

  // ---- Render with paper columns ------------------------------------------------
  struct PaperRow {
    const char* name;
    const char* f1;
    const char* acc;
    const char* auc;
    const char* map;
    const char* hits;
  };
  const PaperRow paper[] = {
      {"Logistic Regression", "0.70", "0.96", "0.79", "-", "-"},
      {"Logistic Regression [no-exo]", "0.49", "0.93", "0.50", "-", "-"},
      {"Logistic Regression [exo-only]", "-", "-", "-", "-", "-"},
      {"Decision Tree", "0.68", "0.95", "0.78", "-", "-"},
      {"Decision Tree [no-exo]", "0.54", "0.92", "0.54", "-", "-"},
      {"Random Forest", "0.66", "0.97", "0.67", "-", "-"},
      {"Random Forest [no-exo]", "0.52", "0.93", "0.52", "-", "-"},
      {"Linear SVC [no-exo]", "0.49", "0.91", "0.50", "-", "-"},
      {"RETINA-S", "0.70", "0.97", "0.73", "0.57", "0.74"},
      {"RETINA-S [no-exo]", "0.65", "0.93", "0.74", "0.56", "0.76"},
      {"RETINA-D", "0.89", "0.99", "0.86", "0.78", "0.88"},
      {"RETINA-D [no-exo]", "0.87", "0.99", "0.80", "0.69", "0.80"},
      {"FOREST", "-", "-", "-", "0.51", "0.64"},
      {"HIDAN", "-", "-", "-", "0.05", "0.05"},
      {"TopoLSTM", "-", "-", "-", "0.60", "0.83"},
      {"SIR", "0.04", "-", "-", "-", "-"},
      {"Gen.Thresh.", "0.04", "-", "-", "-", "-"},
  };

  TableWriter table("", {"model", "F1(p)", "F1", "ACC(p)", "ACC", "AUC(p)",
                         "AUC", "MAP@20(p)", "MAP@20", "HITS@20(p)",
                         "HITS@20"});
  for (const PaperRow& p : paper) {
    const RowResult* found = nullptr;
    for (const RowResult& r : rows) {
      if (r.name == p.name) found = &r;
    }
    if (found == nullptr) continue;
    table.AddRow({p.name, p.f1, Cell(found->f1), p.acc, Cell(found->acc),
                  p.auc, Cell(found->auc), p.map, Cell(found->map20), p.hits,
                  Cell(found->hits20)});
  }
  table.Print();

  std::printf(
      "\nShape checks (paper): RETINA-D best overall; exogenous signal "
      "helps every model family; TopoLSTM best external baseline; "
      "HIDAN collapses; SIR/Gen.Thresh. collapse on macro-F1.\n");
  return 0;
}
