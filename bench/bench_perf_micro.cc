// Google-benchmark micro-benchmarks for the computational kernels: the
// exogenous attention block, GRU cell, BFS on the follower graph, tf-idf
// transforms, Doc2Vec inference and world generation.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "datagen/world.h"
#include "graph/generators.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/param_registry.h"
#include "text/doc2vec.h"
#include "text/tfidf.h"

namespace {

using namespace retina;

// Replays the Glorot init the old Rng-taking constructors performed.
template <typename LayerT>
void InitLayer(LayerT* layer, Rng* rng) {
  nn::ParamRegistry reg;
  layer->RegisterParams(&reg, "layer");
  reg.InitGlorot(rng);
}

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(1);
  const size_t seq = static_cast<size_t>(state.range(0));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  Vec tweet(50);
  for (double& v : tweet) v = rng.Normal();
  Matrix news(seq, 50);
  for (double& v : news.data()) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(att.Forward(tweet, news, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionForward)->Arg(15)->Arg(60)->Arg(240);

void BM_AttentionBackward(benchmark::State& state) {
  Rng rng(2);
  const size_t seq = static_cast<size_t>(state.range(0));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  Vec tweet(50), dout(64);
  for (double& v : tweet) v = rng.Normal();
  for (double& v : dout) v = rng.Normal();
  Matrix news(seq, 50);
  for (double& v : news.data()) v = rng.Normal();
  nn::AttentionCache cache;
  (void)att.Forward(tweet, news, &cache);
  for (auto _ : state) {
    att.Backward(cache, dout);
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionBackward)->Arg(60);

// Fixed-size dispatch overhead of the execution layer: an empty body over
// state.range(0) items on a pool of state.range(1) threads.
void BM_ParallelForOverhead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  par::ThreadPool pool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    par::ParallelFor(n, 1, [](size_t) {}, &pool);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForOverhead)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8});

// A batch of attention forwards — the per-candidate scoring shape — run
// serially (threads == 1) vs on a pool (threads > 1).
void BM_AttentionBatchForward(benchmark::State& state) {
  Rng rng(9);
  const size_t batch = 64;
  par::ThreadPool pool(static_cast<size_t>(state.range(0)));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  std::vector<Vec> tweets(batch, Vec(50));
  for (auto& t : tweets) {
    for (double& v : t) v = rng.Normal();
  }
  Matrix news(60, 50);
  for (double& v : news.data()) v = rng.Normal();
  std::vector<Vec> out(batch);
  for (auto _ : state) {
    par::ParallelFor(
        batch, 4,
        [&](size_t i) { out[i] = att.Forward(tweets[i], news, nullptr); },
        &pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AttentionBatchForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Dense kernels across the naive/blocked crossover: MatMul switches to the
// transposed-B register-blocked path above 16K mul-adds, so Arg(16) runs
// the naive kernel and the larger sizes the blocked one.
void BM_MatMul(benchmark::State& state) {
  Rng rng(10);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_MatVec(benchmark::State& state) {
  Rng rng(11);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n);
  for (double& v : a.data()) v = rng.Normal();
  Vec x(n);
  for (double& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatVec(x));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MatVec)->Arg(64)->Arg(256);

void BM_GruStep(benchmark::State& state) {
  Rng rng(3);
  nn::GruCell gru(130, 64);
  InitLayer(&gru, &rng);
  Vec x(130), h(64, 0.0);
  for (double& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x, h, nullptr));
  }
}
BENCHMARK(BM_GruStep);

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Vec> interests(n);
  for (auto& v : interests) v = rng.Dirichlet(10, 0.3);
  std::vector<int> echo(n, -1);
  const auto net =
      graph::GenerateFollowerNetwork(interests, echo, {}, &rng);
  graph::NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.BfsDistances(src, 4));
    src = (src + 1) % static_cast<graph::NodeId>(n);
  }
  state.SetItemsProcessed(state.iterations() * net.NumEdges());
}
BENCHMARK(BM_BfsDistances)->Arg(2000)->Arg(8000);

void BM_TfIdfTransform(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::string> d;
    for (int w = 0; w < 14; ++w) {
      d.push_back("w" + std::to_string(rng.UniformInt(800)));
    }
    docs.push_back(std::move(d));
  }
  text::TfIdfOptions opts;
  opts.max_features = 300;
  text::TfIdfVectorizer tfidf(opts);
  if (!tfidf.Fit(docs).ok()) state.SkipWithError("fit failed");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tfidf.Transform(docs[i % docs.size()]));
    ++i;
  }
}
BENCHMARK(BM_TfIdfTransform);

void BM_Doc2VecInfer(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> d;
    for (int w = 0; w < 14; ++w) {
      d.push_back("w" + std::to_string(rng.UniformInt(300)));
    }
    docs.push_back(std::move(d));
  }
  text::Doc2VecOptions opts;
  opts.dim = 50;
  opts.epochs = 3;
  text::Doc2Vec model(opts);
  if (!model.Train(docs).ok()) state.SkipWithError("train failed");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.InferVector(docs[i % docs.size()], 8));
    ++i;
  }
}
BENCHMARK(BM_Doc2VecInfer);

void BM_WorldGenerate(benchmark::State& state) {
  datagen::WorldConfig config;
  config.scale = 0.02;
  config.num_users = 400;
  config.history_length = 8;
  config.news_per_day = 30.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::SyntheticWorld::Generate(config, seed));
    ++seed;
  }
}
BENCHMARK(BM_WorldGenerate)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN rejects unknown flags, so the smoke-harness contract
// (`<bench> --smoke` must run end-to-end quickly) is honored by a custom
// main that translates --smoke into a minimal measurement time before the
// standard benchmark initialization.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
