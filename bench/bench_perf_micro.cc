// Google-benchmark micro-benchmarks for the computational kernels: the
// exogenous attention block, GRU cell, BFS on the follower graph, tf-idf
// transforms, Doc2Vec inference and world generation.
//
// The binary also runs a scalar-vs-dispatched comparison over every
// retina::simd kernel (dense sizes 16/64/256/1024 plus tf-idf-shaped
// sparse cases) and writes it as BENCH_kernels.json — dispatch metadata
// included — for tools/check_bench.py's kernel speedup floors.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/sparse_vec.h"
#include "common/thread_pool.h"
#include "datagen/world.h"
#include "graph/generators.h"
#include "nn/attention.h"
#include "nn/gru.h"
#include "nn/param_registry.h"
#include "text/doc2vec.h"
#include "text/tfidf.h"

namespace {

using namespace retina;

// Replays the Glorot init the old Rng-taking constructors performed.
template <typename LayerT>
void InitLayer(LayerT* layer, Rng* rng) {
  nn::ParamRegistry reg;
  layer->RegisterParams(&reg, "layer");
  reg.InitGlorot(rng);
}

void BM_AttentionForward(benchmark::State& state) {
  Rng rng(1);
  const size_t seq = static_cast<size_t>(state.range(0));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  Vec tweet(50);
  for (double& v : tweet) v = rng.Normal();
  Matrix news(seq, 50);
  for (double& v : news.data()) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(att.Forward(tweet, news, nullptr));
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionForward)->Arg(15)->Arg(60)->Arg(240);

void BM_AttentionBackward(benchmark::State& state) {
  Rng rng(2);
  const size_t seq = static_cast<size_t>(state.range(0));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  Vec tweet(50), dout(64);
  for (double& v : tweet) v = rng.Normal();
  for (double& v : dout) v = rng.Normal();
  Matrix news(seq, 50);
  for (double& v : news.data()) v = rng.Normal();
  nn::AttentionCache cache;
  (void)att.Forward(tweet, news, &cache);
  for (auto _ : state) {
    att.Backward(cache, dout);
  }
  state.SetItemsProcessed(state.iterations() * seq);
}
BENCHMARK(BM_AttentionBackward)->Arg(60);

// Fixed-size dispatch overhead of the execution layer: an empty body over
// state.range(0) items on a pool of state.range(1) threads.
void BM_ParallelForOverhead(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  par::ThreadPool pool(static_cast<size_t>(state.range(1)));
  for (auto _ : state) {
    par::ParallelFor(n, 1, [](size_t) {}, &pool);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ParallelForOverhead)
    ->Args({1024, 1})
    ->Args({1024, 2})
    ->Args({1024, 4})
    ->Args({1024, 8});

// A batch of attention forwards — the per-candidate scoring shape — run
// serially (threads == 1) vs on a pool (threads > 1).
void BM_AttentionBatchForward(benchmark::State& state) {
  Rng rng(9);
  const size_t batch = 64;
  par::ThreadPool pool(static_cast<size_t>(state.range(0)));
  nn::ExogenousAttention att(50, 50, 64);
  InitLayer(&att, &rng);
  std::vector<Vec> tweets(batch, Vec(50));
  for (auto& t : tweets) {
    for (double& v : t) v = rng.Normal();
  }
  Matrix news(60, 50);
  for (double& v : news.data()) v = rng.Normal();
  std::vector<Vec> out(batch);
  for (auto _ : state) {
    par::ParallelFor(
        batch, 4,
        [&](size_t i) { out[i] = att.Forward(tweets[i], news, nullptr); },
        &pool);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_AttentionBatchForward)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Dense kernels across the naive/blocked crossover: MatMul switches to the
// transposed-B register-blocked path above 16K mul-adds, so Arg(16) runs
// the naive kernel and the larger sizes the blocked one.
void BM_MatMul(benchmark::State& state) {
  Rng rng(10);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n), b(n, n);
  for (double& v : a.data()) v = rng.Normal();
  for (double& v : b.data()) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatMul(b));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_MatVec(benchmark::State& state) {
  Rng rng(11);
  const size_t n = static_cast<size_t>(state.range(0));
  Matrix a(n, n);
  for (double& v : a.data()) v = rng.Normal();
  Vec x(n);
  for (double& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.MatVec(x));
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_MatVec)->Arg(64)->Arg(256);

void BM_GruStep(benchmark::State& state) {
  Rng rng(3);
  nn::GruCell gru(130, 64);
  InitLayer(&gru, &rng);
  Vec x(130), h(64, 0.0);
  for (double& v : x) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gru.Forward(x, h, nullptr));
  }
}
BENCHMARK(BM_GruStep);

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(4);
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Vec> interests(n);
  for (auto& v : interests) v = rng.Dirichlet(10, 0.3);
  std::vector<int> echo(n, -1);
  const auto net =
      graph::GenerateFollowerNetwork(interests, echo, {}, &rng);
  graph::NodeId src = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.BfsDistances(src, 4));
    src = (src + 1) % static_cast<graph::NodeId>(n);
  }
  state.SetItemsProcessed(state.iterations() * net.NumEdges());
}
BENCHMARK(BM_BfsDistances)->Arg(2000)->Arg(8000);

void BM_TfIdfTransform(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::string> d;
    for (int w = 0; w < 14; ++w) {
      d.push_back("w" + std::to_string(rng.UniformInt(800)));
    }
    docs.push_back(std::move(d));
  }
  text::TfIdfOptions opts;
  opts.max_features = 300;
  text::TfIdfVectorizer tfidf(opts);
  if (!tfidf.Fit(docs).ok()) state.SkipWithError("fit failed");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tfidf.Transform(docs[i % docs.size()]));
    ++i;
  }
}
BENCHMARK(BM_TfIdfTransform);

void BM_Doc2VecInfer(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::vector<std::string>> docs;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> d;
    for (int w = 0; w < 14; ++w) {
      d.push_back("w" + std::to_string(rng.UniformInt(300)));
    }
    docs.push_back(std::move(d));
  }
  text::Doc2VecOptions opts;
  opts.dim = 50;
  opts.epochs = 3;
  text::Doc2Vec model(opts);
  if (!model.Train(docs).ok()) state.SkipWithError("train failed");
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.InferVector(docs[i % docs.size()], 8));
    ++i;
  }
}
BENCHMARK(BM_Doc2VecInfer);

void BM_WorldGenerate(benchmark::State& state) {
  datagen::WorldConfig config;
  config.scale = 0.02;
  config.num_users = 400;
  config.history_length = 8;
  config.news_per_day = 30.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(datagen::SyntheticWorld::Generate(config, seed));
    ++seed;
  }
}
BENCHMARK(BM_WorldGenerate)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// simd kernel dispatch benchmarks: the same dispatched entry points the
// library's hot loops call, at the library's characteristic sizes.

void BM_SimdDot(benchmark::State& state) {
  Rng rng(20);
  const size_t n = static_cast<size_t>(state.range(0));
  Vec a(n), b(n);
  for (double& v : a) v = rng.Normal();
  for (double& v : b) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Dot(a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdDot)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SimdAxpy(benchmark::State& state) {
  Rng rng(21);
  const size_t n = static_cast<size_t>(state.range(0));
  Vec x(n), y(n);
  for (double& v : x) v = rng.Normal();
  for (double& v : y) v = rng.Normal();
  for (auto _ : state) {
    simd::Axpy(1.0009765625, x.data(), y.data(), n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SimdAxpy)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_SimdSparseDot(benchmark::State& state) {
  Rng rng(22);
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t nnz = static_cast<size_t>(state.range(1));
  SparseVec x(dim);
  for (size_t k = 0; k < nnz; ++k) {
    x.PushBack(k * dim / nnz, rng.Normal());
  }
  Vec y(dim);
  for (double& v : y) v = rng.Normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::SparseDot(
        x.values().data(), x.indices().data(), x.nnz(), y.data()));
  }
  state.SetItemsProcessed(state.iterations() * nnz);
}
// 300-dim tf-idf block with ~24 active tokens, and a denser large case.
BENCHMARK(BM_SimdSparseDot)->Args({300, 24})->Args({1024, 256});

// --------------------------------------------------------------------------
// Scalar-vs-active kernel comparison report (BENCH_kernels.json).

// Best-of-reps nanoseconds per call of `fn`, auto-scaling the inner
// iteration count until one repetition runs long enough to time reliably.
double TimeNsPerCall(const std::function<void()>& fn, bool smoke) {
  fn();  // warm up caches and the dispatch table
  const double target_ns = smoke ? 2e5 : 2e6;
  const int reps = smoke ? 2 : 3;
  double best = 1e300;
  size_t iters = 1;
  for (int rep = 0; rep < reps; ++rep) {
    for (;;) {
      const auto t0 = std::chrono::steady_clock::now();
      for (size_t i = 0; i < iters; ++i) fn();
      const double dt = std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (dt >= target_ns) {
        best = std::min(best, dt / static_cast<double>(iters));
        break;
      }
      iters *= 2;
    }
  }
  return best;
}

struct KernelCase {
  size_t size;  // dense dimensionality of the case
  size_t work;  // effective work size the floors key on (nnz for sparse)
  double scalar_ns;
  double active_ns;
};

struct KernelReport {
  std::string name;
  std::vector<KernelCase> cases;
};

// One case timed against both tables. `run(table)` must execute the kernel
// exactly once against pre-built inputs.
KernelCase TimeCase(size_t size, bool smoke,
                    const std::function<void(const simd::KernelTable&)>& run) {
  const simd::KernelTable& scalar =
      simd::KernelsFor(simd::Backend::kScalar);
  const simd::KernelTable& active = simd::Kernels();
  KernelCase c;
  c.size = size;
  c.work = size;
  c.scalar_ns = TimeNsPerCall([&] { run(scalar); }, smoke);
  c.active_ns = TimeNsPerCall([&] { run(active); }, smoke);
  return c;
}

std::vector<KernelReport> RunKernelComparison(bool smoke) {
  Rng rng(40);
  std::vector<KernelReport> reports;
  const std::vector<size_t> sizes = {16, 64, 256, 1024};

  const size_t kMax = 1024;
  Vec a(kMax), b(kMax), y(kMax);
  for (double& v : a) v = rng.Normal();
  for (double& v : b) v = rng.Normal();
  for (double& v : y) v = rng.Normal();
  // Scale factor ~1 so repeated in-place axpy/scale calls stay finite.
  const double alpha = 1.0000001;

  KernelReport dot{"dot", {}};
  KernelReport axpy{"axpy", {}};
  KernelReport scale{"scale", {}};
  KernelReport norm2{"norm2", {}};
  for (size_t n : sizes) {
    dot.cases.push_back(TimeCase(n, smoke, [&](const simd::KernelTable& t) {
      benchmark::DoNotOptimize(t.dot(a.data(), b.data(), n));
    }));
    axpy.cases.push_back(TimeCase(n, smoke, [&](const simd::KernelTable& t) {
      t.axpy(alpha, a.data(), y.data(), n);
      benchmark::DoNotOptimize(y.data());
    }));
    scale.cases.push_back(
        TimeCase(n, smoke, [&](const simd::KernelTable& t) {
          t.scale(alpha, y.data(), n);
          benchmark::DoNotOptimize(y.data());
        }));
    norm2.cases.push_back(
        TimeCase(n, smoke, [&](const simd::KernelTable& t) {
          benchmark::DoNotOptimize(t.dot(a.data(), a.data(), n));
        }));
  }
  reports.push_back(std::move(dot));
  reports.push_back(std::move(axpy));
  reports.push_back(std::move(scale));
  reports.push_back(std::move(norm2));

  // Matrix drivers go through the dispatched dot per output entry; time
  // them end-to-end by forcing the backend around the driver call.
  // (ForceBackend is cheap — it swaps a pointer — and this binary is
  // single-threaded.)
  {
    KernelReport matmul{"matmul_transposed_b", {}};
    for (size_t n : {16u, 64u, 256u}) {
      Matrix A(n, n), Bt(n, n), C(n, n);
      Rng mrng(41);
      for (double& v : A.data()) v = mrng.Normal();
      for (double& v : Bt.data()) v = mrng.Normal();
      const simd::Backend active = simd::Active();
      KernelCase c;
      c.size = n;
      c.work = n;
      (void)simd::ForceBackend(simd::Backend::kScalar);
      c.scalar_ns = TimeNsPerCall(
          [&] {
            simd::MatMulTransposedB(A.Row(0), n, n, Bt.Row(0), n, C.Row(0));
            benchmark::DoNotOptimize(C.Row(0));
          },
          smoke);
      (void)simd::ForceBackend(active);
      c.active_ns = TimeNsPerCall(
          [&] {
            simd::MatMulTransposedB(A.Row(0), n, n, Bt.Row(0), n, C.Row(0));
            benchmark::DoNotOptimize(C.Row(0));
          },
          smoke);
      matmul.cases.push_back(c);
    }
    reports.push_back(std::move(matmul));
  }

  // tf-idf-shaped sparsity: a 300-dim block with ~24 active tokens, plus a
  // denser 1024-dim case. The recorded "size" is the dense dimensionality;
  // the recorded "work" (what the floors key on) is the nonzero count.
  {
    KernelReport sdot{"sparse_dot", {}};
    KernelReport saxpy{"sparse_axpy", {}};
    KernelReport smv{"sparse_matvec", {}};
    const std::vector<std::pair<size_t, size_t>> shapes = {{300, 24},
                                                           {1024, 256}};
    for (const auto& [dim, nnz] : shapes) {
      SparseVec x(dim);
      Rng srng(42);
      for (size_t k = 0; k < nnz; ++k) {
        x.PushBack(k * dim / nnz, srng.Normal());
      }
      Vec dense(dim);
      for (double& v : dense) v = srng.Normal();
      sdot.cases.push_back(
          TimeCase(dim, smoke, [&](const simd::KernelTable& t) {
            benchmark::DoNotOptimize(t.sparse_dot(
                x.values().data(), x.indices().data(), x.nnz(),
                dense.data()));
          }));
      sdot.cases.back().work = nnz;
      Vec acc(dim, 0.0);
      saxpy.cases.push_back(
          TimeCase(dim, smoke, [&](const simd::KernelTable& t) {
            t.sparse_axpy(alpha, x.values().data(), x.indices().data(),
                          x.nnz(), acc.data());
            benchmark::DoNotOptimize(acc.data());
          }));
      saxpy.cases.back().work = nnz;
      const size_t rows = 64;
      Matrix W(rows, dim);
      for (double& v : W.data()) v = srng.Normal();
      Vec out(rows);
      const simd::Backend active = simd::Active();
      KernelCase c;
      c.size = dim;
      c.work = nnz;
      (void)simd::ForceBackend(simd::Backend::kScalar);
      c.scalar_ns = TimeNsPerCall(
          [&] {
            simd::SparseMatVec(W.Row(0), rows, dim, x.values().data(),
                               x.indices().data(), x.nnz(), out.data());
            benchmark::DoNotOptimize(out.data());
          },
          smoke);
      (void)simd::ForceBackend(active);
      c.active_ns = TimeNsPerCall(
          [&] {
            simd::SparseMatVec(W.Row(0), rows, dim, x.values().data(),
                               x.indices().data(), x.nnz(), out.data());
            benchmark::DoNotOptimize(out.data());
          },
          smoke);
      smv.cases.push_back(c);
    }
    reports.push_back(std::move(sdot));
    reports.push_back(std::move(saxpy));
    reports.push_back(std::move(smv));
  }
  return reports;
}

int WriteKernelReport(bool smoke) {
  const std::vector<KernelReport> reports = RunKernelComparison(smoke);
  const char* out_path = "BENCH_kernels.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"dispatch\": \"%s\",\n",
               simd::BackendName(simd::Active()));
  std::fprintf(f, "  \"detected\": \"%s\",\n",
               simd::BackendName(simd::Detect()));
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"kernels\": {\n");
  for (size_t r = 0; r < reports.size(); ++r) {
    const KernelReport& rep = reports[r];
    std::fprintf(f, "    \"%s\": {\n      \"sizes\": [", rep.name.c_str());
    for (size_t i = 0; i < rep.cases.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", rep.cases[i].size);
    }
    std::fprintf(f, "],\n      \"work\": [");
    for (size_t i = 0; i < rep.cases.size(); ++i) {
      std::fprintf(f, "%s%zu", i ? ", " : "", rep.cases[i].work);
    }
    std::fprintf(f, "],\n      \"scalar_ns\": [");
    for (size_t i = 0; i < rep.cases.size(); ++i) {
      std::fprintf(f, "%s%.1f", i ? ", " : "", rep.cases[i].scalar_ns);
    }
    std::fprintf(f, "],\n      \"active_ns\": [");
    for (size_t i = 0; i < rep.cases.size(); ++i) {
      std::fprintf(f, "%s%.1f", i ? ", " : "", rep.cases[i].active_ns);
    }
    std::fprintf(f, "],\n      \"speedup\": [");
    for (size_t i = 0; i < rep.cases.size(); ++i) {
      const KernelCase& c = rep.cases[i];
      std::fprintf(f, "%s%.3f", i ? ", " : "",
                   c.active_ns > 0.0 ? c.scalar_ns / c.active_ns : 0.0);
    }
    std::fprintf(f, "]\n    }%s\n", r + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] kernel dispatch=%s report -> %s\n",
               simd::BackendName(simd::Active()), out_path);
  return 0;
}

}  // namespace

// BENCHMARK_MAIN rejects unknown flags, so the smoke-harness contract
// (`<bench> --smoke` must run end-to-end quickly) is honored by a custom
// main that translates --smoke into a minimal measurement time before the
// standard benchmark initialization.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.01";
  if (smoke) args.push_back(min_time);
  int n = static_cast<int>(args.size());
  args.push_back(nullptr);
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return WriteKernelReport(smoke);
}
