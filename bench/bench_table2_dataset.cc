// Table II reproduction: per-hashtag dataset statistics of the synthetic
// world against the paper's crawled values. "paper" columns are Table II;
// "ours" columns are measured on the generated world (tweet counts scale
// with --scale; the paper values correspond to scale=1).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  // Statistics need no feature pipeline; generate at a larger scale with
  // short histories to keep memory flat.
  const BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.5,
                                      /*default_users=*/8000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, /*history_length=*/6,
                                    /*build_features=*/false);
  const auto& world = bench.world;
  const auto stats = world.ComputeHashtagStats();

  std::printf(
      "Table II — dataset statistics (scale=%.2f, %zu users; paper columns "
      "are the crawled dataset at scale 1.0)\n",
      flags.scale, flags.users);
  TableWriter table(
      "",
      {"hashtag", "tweets(paper)", "tweets(ours)", "avgRT(paper)",
       "avgRT(ours)", "users(ours)", "users-all(ours)", "%hate(paper)",
       "%hate(ours)"});
  size_t total_tweets = 0, total_rts = 0;
  for (size_t h = 0; h < world.hashtags().size(); ++h) {
    const auto& info = world.hashtags()[h];
    const auto& s = stats[h];
    table.AddRow({info.tag, std::to_string(info.target_tweets),
                  std::to_string(s.tweets), Fmt(info.target_avg_retweets),
                  Fmt(s.avg_retweets), std::to_string(s.unique_authors),
                  std::to_string(s.users_all), Fmt(info.target_pct_hate),
                  Fmt(s.pct_hate)});
    total_tweets += s.tweets;
    total_rts += static_cast<size_t>(s.avg_retweets *
                                     static_cast<double>(s.tweets));
  }
  table.Print();

  size_t hateful = 0;
  for (const auto& tw : world.tweets()) hateful += tw.is_hateful;
  std::printf(
      "\nTotals: %zu root tweets, %zu retweets, %.2f%% hateful "
      "(paper: 31,133 roots, ~4%% hateful)\n",
      total_tweets, total_rts,
      100.0 * static_cast<double>(hateful) /
          static_cast<double>(world.tweets().size()));

  const auto degree = graph::ComputeDegreeStats(world.network());
  std::printf(
      "Network: %zu nodes, %zu follow edges, mean followers %.1f, max %d, "
      "top-1%% share %.2f (heavy tail)\n",
      world.network().NumNodes(), world.network().NumEdges(),
      degree.mean_followers, static_cast<int>(degree.max_followers),
      degree.top1pct_share);
  std::printf("News corpus: %zu headlines over %.0f days (paper: 319,179 "
              "filtered)\n",
              world.news().articles().size(), world.config().horizon_days);
  return 0;
}
