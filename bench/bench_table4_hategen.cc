// Table IV reproduction: hate-generation prediction — six classifiers
// (Table III parameters) under five sampling / feature-reduction variants,
// evaluated on gold labels with macro-F1 / ACC / AUC.

#include "bench/bench_common.h"

namespace {

// Paper values (macro-F1, ACC, AUC) from Table IV, indexed
// [model][proc] with models in MakeHateGenModelZoo order
// (SVM-l, SVM-r, LogReg, Dec-Tree, AdaBoost, XGB) and procs in
// {None, DS, US+DS, PCA, top-K} order.
constexpr double kPaper[6][5][3] = {
    // SVM linear
    {{0.52, 0.94, 0.52}, {0.63, 0.73, 0.63}, {0.44, 0.64, 0.63},
     {0.55, 0.90, 0.59}, {0.53, 0.84, 0.63}},
    // SVM rbf
    {{0.55, 0.88, 0.61}, {0.62, 0.70, 0.64}, {0.46, 0.69, 0.66},
     {0.48, 0.71, 0.68}, {0.50, 0.79, 0.62}},
    // LogReg
    {{0.50, 0.96, 0.50}, {0.64, 0.79, 0.63}, {0.47, 0.72, 0.63},
     {0.49, 0.97, 0.50}, {0.49, 0.97, 0.50}},
    // Dec-Tree
    {{0.51, 0.79, 0.64}, {0.65, 0.74, 0.66}, {0.45, 0.67, 0.61},
     {0.46, 0.68, 0.65}, {0.53, 0.84, 0.63}},
    // AdaBoost
    {{0.49, 0.97, 0.49}, {0.62, 0.77, 0.61}, {0.44, 0.63, 0.68},
     {0.50, 0.97, 0.50}, {0.49, 0.97, 0.50}},
    // XGB
    {{0.53, 0.97, 0.52}, {0.57, 0.76, 0.57}, {0.44, 0.66, 0.62},
     {0.51, 0.96, 0.51}, {0.49, 0.97, 0.50}},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.35, 4500);
  BenchWorld bench = MakeBenchWorld(flags);

  HateGenTaskOptions opts;
  auto task_result = BuildHateGenTask(*bench.extractor, opts);
  if (!task_result.ok()) {
    std::fprintf(stderr, "task build failed: %s\n",
                 task_result.status().ToString().c_str());
    return 1;
  }
  const HateGenTask& task = task_result.ValueOrDie();
  std::printf(
      "Table IV — hate generation (train %zu [%zu hateful, machine labels], "
      "test %zu [%zu hateful, gold], %zu features)\n",
      task.train.NumRows(), task.train.NumPositives(), task.test.NumRows(),
      task.test.NumPositives(), task.dim);

  TableWriter table("", {"model", "proc", "F1(p)", "F1", "ACC(p)", "ACC",
                         "AUC(p)", "AUC"});
  const ProcVariant procs[] = {ProcVariant::kNone, ProcVariant::kDownsample,
                               ProcVariant::kUpDownsample, ProcVariant::kPca,
                               ProcVariant::kTopK};
  double best_ds_f1 = 0.0;
  std::string best_ds_model;
  const auto zoo = MakeHateGenModelZoo();
  for (size_t m = 0; m < zoo.size(); ++m) {
    for (size_t p = 0; p < 5; ++p) {
      Stopwatch timer;
      // Sampling variants are averaged over three resampling seeds (the
      // downsampled split is small enough that a single draw is noisy);
      // the deterministic pipelines run once.
      const bool resampled = procs[p] == ProcVariant::kDownsample ||
                             procs[p] == ProcVariant::kUpDownsample;
      const int runs = resampled ? 3 : 1;
      EvalResult mean;
      bool ok = true;
      for (int run = 0; run < runs; ++run) {
        auto fresh = MakeHateGenModelZoo();
        auto result = RunHateGenPipeline(task, fresh[m].get(), procs[p],
                                         100 + p + 1000 * run);
        if (!result.ok()) {
          std::fprintf(stderr, "pipeline failed: %s\n",
                       result.status().ToString().c_str());
          ok = false;
          break;
        }
        const EvalResult& r = result.ValueOrDie();
        mean.model = r.model;
        mean.proc = r.proc;
        mean.macro_f1 += r.macro_f1 / runs;
        mean.accuracy += r.accuracy / runs;
        mean.auc += r.auc / runs;
      }
      if (!ok) continue;
      table.AddRow({mean.model, mean.proc, Fmt(kPaper[m][p][0]),
                    Fmt(mean.macro_f1), Fmt(kPaper[m][p][1]),
                    Fmt(mean.accuracy), Fmt(kPaper[m][p][2]),
                    Fmt(mean.auc)});
      if (procs[p] == ProcVariant::kDownsample &&
          mean.macro_f1 > best_ds_f1) {
        best_ds_f1 = mean.macro_f1;
        best_ds_model = mean.model;
      }
      std::fprintf(stderr, "[bench] %s/%s done (%.1fs)\n",
                   mean.model.c_str(), mean.proc.c_str(),
                   timer.ElapsedSeconds());
    }
  }
  table.Print();
  std::printf(
      "\nShape checks (paper): downsampling is the best processing for "
      "every model; best DS macro-F1 0.65 (Dec-Tree).\n");
  std::printf("Ours: best DS macro-F1 %.2f (%s)\n", best_ds_f1,
              best_ds_model.c_str());
  return 0;
}
