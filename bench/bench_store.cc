// Tiered user feature store bench: per-lookup latency of the three tiers.
//
// Builds a disk-backed store (store/feature_store.h) over every EVEN user
// id of a bench world, so odd ids are in-range absent users — the case the
// per-block Bloom filters exist for. Reports median ns per lookup for:
//   cold     — fresh FeatureStore::Open, stored users in shuffled order
//              (pays mmap faults, per-block checksum verification on first
//              touch, and the block decode)
//   warm     — the serving LRU in front of the store (LruCache::Get on a
//              preloaded cache), the steady state of a hot working set
//   absent   — odd ids against the open store: index binary search plus a
//              Bloom probe, no block bytes touched
//   compute  — FeatureExtractor::ComputeHistoryBlock, the tier the store
//              replaces
// plus the Bloom filter's observed skip/false-positive counts. Every
// stored block is asserted bit-identical to the in-process computation
// before any timing (doubles round-trip as IEEE-754 bit patterns).
//
// Writes BENCH_store.json; tools/check_bench.py gates the
// warm-vs-cold and absent-vs-cold speedups against tools/bench_floors.json
// (ratios, not absolutes — CI containers vary).
//
// Flags: bench_common.h standard set; --reps=<n> (default 5, median).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/lru_cache.h"
#include "common/rng.h"
#include "common/sparse_vec.h"
#include "common/stopwatch.h"
#include "store/feature_store.h"

namespace retina::bench {
namespace {

double Median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  return xs[xs.size() / 2];
}

}  // namespace
}  // namespace retina::bench

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  int reps = 5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--reps=", 7) == 0) reps = std::atoi(argv[i] + 7);
  }
  if (reps < 1) reps = 1;

  BenchFlags flags = ParseFlags(argc, argv, /*default_scale=*/0.04,
                                /*default_users=*/1200);
  BenchWorld bw = MakeBenchWorld(flags, /*feature_dim=*/200,
                                 /*news_window=*/40);
  const core::FeatureExtractor& fx = *bw.extractor;
  const size_t n_users = bw.world.NumUsers();

  // Store every even user id; odd ids become in-range absent lookups that
  // must be answered by the Bloom filter, not the block range index.
  std::vector<uint64_t> stored, absent;
  for (size_t u = 0; u < n_users; ++u) {
    (u % 2 == 0 ? stored : absent).push_back(u);
  }

  const std::string store_dir = "bench_store_data";
  Stopwatch build_timer;
  {
    auto builder = store::FeatureStoreBuilder::Create(
        store_dir, fx.HistoryBlockDim());
    if (!builder.ok()) {
      std::fprintf(stderr, "builder create failed: %s\n",
                   builder.status().ToString().c_str());
      return 1;
    }
    for (uint64_t u : stored) {
      const SparseVec block = SparseVec::FromDense(
          fx.ComputeHistoryBlock(static_cast<core::NodeId>(u)));
      if (!builder.ValueOrDie()->Add(u, block).ok()) {
        std::fprintf(stderr, "builder add failed at user %llu\n",
                     static_cast<unsigned long long>(u));
        return 1;
      }
    }
    const Status st = builder.ValueOrDie()->Finish();
    if (!st.ok()) {
      std::fprintf(stderr, "builder finish failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "[bench] store built: %zu users (%.1fs)\n",
               stored.size(), build_timer.ElapsedSeconds());

  // Correctness gate before any timing: every stored block must decode to
  // exactly the SparseVec the extractor computes in process.
  size_t blocks = 0;
  double bits_per_key = 0.0;
  {
    auto opened = store::FeatureStore::Open(store_dir);
    if (!opened.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    const auto& s = opened.ValueOrDie();
    blocks = s->num_blocks();
    bits_per_key = s->bits_per_key();
    for (uint64_t u : stored) {
      SparseVec got;
      store::LookupOutcome outcome;
      if (!s->Lookup(u, &got, &outcome).ok() ||
          outcome != store::LookupOutcome::kFound) {
        std::fprintf(stderr, "FATAL: stored user %llu not found\n",
                     static_cast<unsigned long long>(u));
        return 1;
      }
      const SparseVec want = SparseVec::FromDense(
          fx.ComputeHistoryBlock(static_cast<core::NodeId>(u)));
      if (got.dim() != want.dim() || got.indices() != want.indices() ||
          got.values() != want.values()) {
        std::fprintf(stderr, "FATAL: user %llu diverged from compute\n",
                     static_cast<unsigned long long>(u));
        return 1;
      }
    }
  }

  // Cold tier: fresh Open per rep, one shuffled pass over the stored
  // users. First touch per block pays the checksum scan; later lookups in
  // the same block amortize it — the honest steady cost of a cold tier.
  std::vector<double> cold_samples;
  for (int r = 0; r < reps; ++r) {
    auto opened = store::FeatureStore::Open(store_dir);
    if (!opened.ok()) return 1;
    const auto& s = opened.ValueOrDie();
    std::vector<uint64_t> order = stored;
    Rng rng(flags.seed + static_cast<uint64_t>(r));
    rng.Shuffle(&order);
    SparseVec out;
    store::LookupOutcome outcome;
    Stopwatch sw;
    for (uint64_t u : order) {
      if (!s->Lookup(u, &out, &outcome).ok()) return 1;
    }
    cold_samples.push_back(sw.ElapsedSeconds() * 1e9 /
                           static_cast<double>(order.size()));
  }
  const double cold_ns = Median(cold_samples);

  // Warm tier: the LRU in front of the store, preloaded and large enough
  // to hold the working set (every Get hits).
  const size_t warm_passes = 50;
  double warm_ns = 0.0;
  {
    LruCache<uint64_t, SparseVec> cache(stored.size());
    auto opened = store::FeatureStore::Open(store_dir);
    if (!opened.ok()) return 1;
    const auto& s = opened.ValueOrDie();
    for (uint64_t u : stored) {
      SparseVec out;
      store::LookupOutcome outcome;
      if (!s->Lookup(u, &out, &outcome).ok()) return 1;
      cache.Put(u, std::move(out));
    }
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      for (size_t p = 0; p < warm_passes; ++p) {
        for (uint64_t u : stored) {
          if (cache.Get(u) == nullptr) return 1;
        }
      }
      samples.push_back(sw.ElapsedSeconds() * 1e9 /
                        static_cast<double>(warm_passes * stored.size()));
    }
    warm_ns = Median(samples);
  }

  // Absent tier: odd ids against an open store. The Bloom filter answers
  // without touching block bytes (modulo its false-positive rate).
  const size_t absent_passes = 50;
  double absent_ns = 0.0;
  uint64_t bloom_skips = 0, bloom_fps = 0;
  {
    auto opened = store::FeatureStore::Open(store_dir);
    if (!opened.ok()) return 1;
    const auto& s = opened.ValueOrDie();
    std::vector<double> samples;
    SparseVec out;
    store::LookupOutcome outcome;
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      for (size_t p = 0; p < absent_passes; ++p) {
        for (uint64_t u : absent) {
          if (!s->Lookup(u, &out, &outcome).ok()) return 1;
          if (outcome == store::LookupOutcome::kFound) {
            std::fprintf(stderr, "FATAL: absent user %llu found\n",
                         static_cast<unsigned long long>(u));
            return 1;
          }
        }
      }
      samples.push_back(sw.ElapsedSeconds() * 1e9 /
                        static_cast<double>(absent_passes * absent.size()));
    }
    absent_ns = Median(samples);
    bloom_skips = s->stats().bloom_skips;
    bloom_fps = s->stats().bloom_false_positives;
  }

  // The tier the store replaces: full in-process recomputation.
  double compute_ns = 0.0;
  {
    std::vector<double> samples;
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      for (uint64_t u : stored) {
        const SparseVec block = SparseVec::FromDense(
            fx.ComputeHistoryBlock(static_cast<core::NodeId>(u)));
        (void)block;
      }
      samples.push_back(sw.ElapsedSeconds() * 1e9 /
                        static_cast<double>(stored.size()));
    }
    compute_ns = Median(samples);
  }

  const double probes = static_cast<double>(bloom_skips + bloom_fps);
  const double fp_rate =
      probes > 0.0 ? static_cast<double>(bloom_fps) / probes : 0.0;
  std::printf("cold    %10.0f ns/lookup\n", cold_ns);
  std::printf("warm    %10.0f ns/lookup   (%.1fx vs cold)\n", warm_ns,
              warm_ns > 0.0 ? cold_ns / warm_ns : 0.0);
  std::printf("absent  %10.0f ns/lookup   (%.1fx vs cold)\n", absent_ns,
              absent_ns > 0.0 ? cold_ns / absent_ns : 0.0);
  std::printf("compute %10.0f ns/lookup\n", compute_ns);
  std::printf("bloom   %llu skips, %llu false positives (fp rate %.4f)\n",
              static_cast<unsigned long long>(bloom_skips),
              static_cast<unsigned long long>(bloom_fps), fp_rate);

  const char* out_path = "BENCH_store.json";
  FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"smoke\": %s,\n", flags.smoke ? "true" : "false");
  std::fprintf(f, "  \"reps\": %d,\n", reps);
  std::fprintf(f, "  \"users\": %zu,\n", n_users);
  std::fprintf(f, "  \"stored_users\": %zu,\n", stored.size());
  std::fprintf(f, "  \"blocks\": %zu,\n", blocks);
  std::fprintf(f, "  \"bits_per_key\": %.2f,\n", bits_per_key);
  std::fprintf(f, "  \"cold_ns_per_lookup\": %.1f,\n", cold_ns);
  std::fprintf(f, "  \"warm_ns_per_lookup\": %.1f,\n", warm_ns);
  std::fprintf(f, "  \"absent_ns_per_lookup\": %.1f,\n", absent_ns);
  std::fprintf(f, "  \"compute_ns_per_lookup\": %.1f,\n", compute_ns);
  std::fprintf(f, "  \"warm_speedup_vs_cold\": %.3f,\n",
               warm_ns > 0.0 ? cold_ns / warm_ns : 0.0);
  std::fprintf(f, "  \"absent_speedup_vs_cold\": %.3f,\n",
               absent_ns > 0.0 ? cold_ns / absent_ns : 0.0);
  std::fprintf(f, "  \"bloom\": {\n");
  std::fprintf(f, "    \"skips\": %llu,\n",
               static_cast<unsigned long long>(bloom_skips));
  std::fprintf(f, "    \"false_positives\": %llu,\n",
               static_cast<unsigned long long>(bloom_fps));
  std::fprintf(f, "    \"fp_rate\": %.6f\n", fp_rate);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  return 0;
}
