// Shared scaffolding for the reproduction benches: builds a world at bench
// scale, runs the annotation pipeline, fits the feature extractor, and
// provides paper-vs-measured table helpers.
//
// Every bench accepts optional flags:
//   --scale=<f>    multiplier on Table II tweet counts (default per bench)
//   --users=<n>    population size
//   --seed=<n>     world seed
//   --smoke        clamp the world and feature sizes to the smallest
//                  configuration that still exercises every code path —
//                  used by the smoke_bench_* ctest targets to keep each
//                  bench binary runnable end-to-end in CI
// so the harness can be re-run at paper scale when time permits.

#ifndef RETINA_BENCH_BENCH_COMMON_H_
#define RETINA_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table.h"
#include "core/feature_extractor.h"
#include "core/hategen_task.h"
#include "core/retina.h"
#include "core/retweet_task.h"
#include "datagen/world.h"
#include "hatedetect/annotation.h"

namespace retina::bench {

struct BenchFlags {
  double scale = 0.12;
  size_t users = 3000;
  uint64_t seed = 7;
  bool smoke = false;
};

inline BenchFlags ParseFlags(int argc, char** argv, double default_scale,
                             size_t default_users) {
  BenchFlags flags;
  flags.scale = default_scale;
  flags.users = default_users;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--scale=", 8) == 0) {
      flags.scale = std::atof(arg + 8);
    } else if (std::strncmp(arg, "--users=", 8) == 0) {
      flags.users = static_cast<size_t>(std::atoll(arg + 8));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      flags.seed = static_cast<uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--smoke") == 0) {
      flags.smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
    }
  }
  if (flags.smoke) {
    flags.scale = std::min(flags.scale, 0.02);
    flags.users = std::min<size_t>(flags.users, 400);
  }
  return flags;
}

struct BenchWorld {
  datagen::SyntheticWorld world;
  hatedetect::AnnotationReport annotation;
  std::unique_ptr<core::FeatureExtractor> extractor;
};

/// Generates world + annotation + features. `feature_dim` scales the
/// tf-idf feature sizes (paper: 300); `news_window` is the attention
/// window (paper: 60).
inline BenchWorld MakeBenchWorld(const BenchFlags& flags,
                                 size_t feature_dim = 300,
                                 size_t news_window = 60,
                                 size_t history_length = 36,
                                 bool build_features = true) {
  if (flags.smoke) {
    feature_dim = std::min<size_t>(feature_dim, 80);
    news_window = std::min<size_t>(news_window, 20);
    history_length = std::min<size_t>(history_length, 10);
  }
  Stopwatch timer;
  datagen::WorldConfig config;
  config.scale = flags.scale;
  config.num_users = flags.users;
  config.history_length = history_length;

  BenchWorld out{datagen::SyntheticWorld::Generate(config, flags.seed),
                 {},
                 nullptr};
  std::fprintf(stderr, "[bench] world: %zu tweets, %zu users (%.1fs)\n",
               out.world.tweets().size(), out.world.NumUsers(),
               timer.ElapsedSeconds());

  timer.Reset();
  hatedetect::AnnotationOptions aopts;
  auto report = hatedetect::AnnotateWorld(&out.world, aopts);
  if (!report.ok()) {
    std::fprintf(stderr, "[bench] annotation failed: %s\n",
                 report.status().ToString().c_str());
    std::exit(1);
  }
  out.annotation = report.ValueOrDie();
  std::fprintf(stderr, "[bench] annotation (%.1fs)\n",
               timer.ElapsedSeconds());

  if (build_features) {
    timer.Reset();
    core::FeatureConfig fc;
    fc.history_size = flags.smoke ? 10 : 30;
    fc.history_tfidf_dim = feature_dim;
    fc.news_tfidf_dim = feature_dim;
    fc.tweet_tfidf_dim = feature_dim;
    fc.news_window = news_window;
    fc.doc2vec_dim = flags.smoke ? 16 : 50;
    fc.doc2vec_epochs = flags.smoke ? 2 : 6;
    fc.seed = flags.seed ^ 0x9E37ULL;
    auto fx = core::FeatureExtractor::Build(out.world, fc);
    if (!fx.ok()) {
      std::fprintf(stderr, "[bench] feature build failed: %s\n",
                   fx.status().ToString().c_str());
      std::exit(1);
    }
    out.extractor =
        std::make_unique<core::FeatureExtractor>(std::move(fx).ValueOrDie());
    std::fprintf(stderr, "[bench] features (%.1fs)\n",
                 timer.ElapsedSeconds());
  }
  return out;
}

inline std::string Fmt(double v, int digits = 2) {
  return FormatDouble(v, digits);
}

}  // namespace retina::bench

#endif  // RETINA_BENCH_BENCH_COMMON_H_
