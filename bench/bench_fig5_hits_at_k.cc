// Figure 5 reproduction: HITS@k of RETINA-D, RETINA-S and TopoLSTM for
// k = 1, 5, 10, 20, 50, 100. Paper shape: RETINA (both modes) clearly
// ahead at small k; the three models converge as k grows.

#include "bench/bench_common.h"
#include "diffusion/neural_baselines.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.08, 2500);
  BenchWorld bench = MakeBenchWorld(flags, 200, 60);

  RetweetTaskOptions opts;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  // RETINA-S.
  RetinaOptions sopts;
  sopts.hidden = 64;
  sopts.epochs = 4;
  Retina retina_s(task.user_dim, task.content_dim, task.embed_dim,
                  task.NumIntervals(), sopts);
  if (!retina_s.Train(task).ok()) return 1;
  const Vec s_scores = retina_s.ScoreCandidates(task, task.test);

  // RETINA-D.
  RetinaOptions dopts = sopts;
  dopts.dynamic = true;
  dopts.use_adam = false;
  dopts.learning_rate = 1e-3;
  dopts.lambda = 2.5;
  Retina retina_d(task.user_dim, task.content_dim, task.embed_dim,
                  task.NumIntervals(), dopts);
  if (!retina_d.Train(task).ok()) return 1;
  const Vec d_scores = retina_d.ScoreCandidates(task, task.test);

  // TopoLSTM.
  diffusion::NeuralDiffusionBaseline topo(
      &bench.world, diffusion::NeuralBaselineKind::kTopoLstm, {});
  if (!topo.Fit(task).ok()) return 1;
  const Vec t_scores = topo.ScoreCandidates(task, task.test);

  const auto sq = MakeRankingQueries(task, task.test, s_scores);
  const auto dq = MakeRankingQueries(task, task.test, d_scores);
  const auto tq = MakeRankingQueries(task, task.test, t_scores);

  std::printf("Figure 5 — HITS@k\n");
  TableWriter table("", {"k", "RETINA-D", "RETINA-S", "TopoLSTM"});
  const size_t ks[] = {1, 5, 10, 20, 50, 100};
  double d1 = 0, t1 = 0, d100 = 0, t100 = 0;
  for (size_t k : ks) {
    const double d = ml::HitsAtK(dq, k);
    const double s = ml::HitsAtK(sq, k);
    const double t = ml::HitsAtK(tq, k);
    table.AddRow({std::to_string(k), Fmt(d, 3), Fmt(s, 3), Fmt(t, 3)});
    if (k == 1) {
      d1 = d;
      t1 = t;
    }
    if (k == 100) {
      d100 = d;
      t100 = t;
    }
  }
  table.Print();
  std::printf(
      "\nShape checks (paper Figure 5): RETINA ahead at small k "
      "(gap@1 %.3f -> %s), models converge at large k (gap@100 %.3f vs "
      "gap@1 -> %s)\n",
      d1 - t1, d1 >= t1 ? "yes" : "NO", d100 - t100,
      (d100 - t100) <= (d1 - t1) + 0.02 ? "yes" : "NO");
  return 0;
}
