// Figure 3 reproduction: per-user, per-hashtag hatefulness matrix. The
// paper's point: the degree of hatefulness a user expresses depends on the
// topic — a user hateful on one hashtag family is often clean on others.

#include <algorithm>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  const BenchFlags flags = ParseFlags(argc, argv, 0.25, 4000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, 24,
                                    /*build_features=*/false);
  const auto& world = bench.world;

  // Pick the most active hate-prone users (those with enough corpus
  // presence to fill a row) and a spread of hashtags.
  std::vector<std::pair<size_t, datagen::NodeId>> activity;
  for (datagen::NodeId u = 0; u < world.NumUsers(); ++u) {
    if (world.users()[u].echo_community < 0) continue;
    size_t tweets = 0;
    for (const auto& tw : world.tweets()) tweets += (tw.author == u);
    if (tweets > 0) activity.emplace_back(tweets, u);
  }
  std::sort(activity.rbegin(), activity.rend());
  const size_t n_users = std::min<size_t>(8, activity.size());

  std::vector<size_t> tags = {0, 1, 5, 9, 13, 15, 24, 31};  // varied themes

  std::printf(
      "Figure 3 — hateful/total ratio per (user, hashtag); rows are the %zu "
      "most active hate-prone users\n",
      n_users);
  std::vector<std::string> header = {"user", "community"};
  for (size_t t : tags) header.push_back(world.hashtags()[t].tag);
  TableWriter table("", header);
  for (size_t i = 0; i < n_users; ++i) {
    const datagen::NodeId u = activity[i].second;
    std::vector<std::string> row = {
        "u" + std::to_string(u),
        std::to_string(world.users()[u].echo_community)};
    for (size_t t : tags) {
      row.push_back(Fmt(world.UserHashtagHateRatio(u, t), 2));
    }
    table.AddRow(row);
  }
  table.Print();

  // Shape check: users are not uniformly hateful across hashtags — the
  // per-user max ratio should exceed the per-user mean by a wide margin.
  double mean_gap = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < n_users; ++i) {
    const datagen::NodeId u = activity[i].second;
    double mx = 0.0, total = 0.0;
    for (size_t t : tags) {
      const double r = world.UserHashtagHateRatio(u, t);
      mx = std::max(mx, r);
      total += r;
    }
    const double mean = total / static_cast<double>(tags.size());
    if (mx > 0.0) {
      mean_gap += mx - mean;
      ++counted;
    }
  }
  std::printf(
      "\nShape check: mean (max - mean) hate ratio across hashtags = %.2f "
      "(topic-dependent hate -> should be well above 0)\n",
      counted > 0 ? mean_gap / static_cast<double>(counted) : 0.0);
  return 0;
}
