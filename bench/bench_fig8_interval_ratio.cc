// Figure 8 reproduction: ratio of predicted to actual retweets arriving in
// each successive time window after the root tweet, for hateful vs
// non-hate roots (dynamic RETINA). Paper shape: noisy over-/under-shoot in
// the earliest windows, converging toward 1.0 in later windows.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.08, 2500);
  BenchWorld bench = MakeBenchWorld(flags, 200, 60);

  RetweetTaskOptions opts;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  RetinaOptions dopts;
  dopts.hidden = 64;
  dopts.epochs = 4;
  dopts.dynamic = true;
  dopts.use_adam = false;
  dopts.learning_rate = 1e-3;
  dopts.lambda = 2.5;
  Retina model(task.user_dim, task.content_dim, task.embed_dim,
               task.NumIntervals(), dopts);
  if (!model.Train(task).ok()) return 1;

  // Per interval: expected (sum of probabilities) and actual retweets,
  // split by root hatefulness.
  const size_t J = task.NumIntervals();
  Vec pred_hate(J, 0.0), actual_hate(J, 0.0);
  Vec pred_nonhate(J, 0.0), actual_nonhate(J, 0.0);
  for (const auto& cand : task.test) {
    const TweetContext& ctx = task.tweets[cand.tweet_pos];
    const Vec probs = model.PredictDynamic(ctx, cand.user_features);
    for (size_t j = 0; j < J; ++j) {
      if (ctx.hateful) {
        pred_hate[j] += probs[j];
        actual_hate[j] += cand.interval_labels[j];
      } else {
        pred_nonhate[j] += probs[j];
        actual_nonhate[j] += cand.interval_labels[j];
      }
    }
  }

  std::printf(
      "Figure 8 — predicted/actual retweets per time window (dynamic "
      "RETINA, expected counts from per-interval probabilities)\n");
  TableWriter table("", {"window(hours)", "ratio(hate)", "ratio(non-hate)"});
  Vec ratio_nonhate(J);
  for (size_t j = 0; j < J; ++j) {
    const std::string window = Fmt(task.interval_edges[j], 0) + "-" +
                               Fmt(task.interval_edges[j + 1], 0);
    const double rh =
        actual_hate[j] > 0 ? pred_hate[j] / actual_hate[j] : 0.0;
    const double rn =
        actual_nonhate[j] > 0 ? pred_nonhate[j] / actual_nonhate[j] : 0.0;
    ratio_nonhate[j] = rn;
    table.AddRow({window, Fmt(rh), Fmt(rn)});
  }
  table.Print();

  const double early_err = std::abs(ratio_nonhate.front() - 1.0);
  const double late_err = std::abs(ratio_nonhate.back() - 1.0);
  std::printf(
      "\nShape check (paper Figure 8): prediction error shrinks with time "
      "(non-hate |ratio-1|: first window %.2f vs last window %.2f -> %s)\n",
      early_err, late_err, late_err <= early_err ? "yes" : "NO");
  return 0;
}
