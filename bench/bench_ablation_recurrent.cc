// Recurrent-cell ablation for dynamic RETINA. Section V-B: "We
// experimented with other recurrent architectures as well; performance
// degraded with simple RNN and no gain with LSTM." This bench reruns the
// dynamic model with each cell under identical budgets.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.06, 2000);
  BenchWorld bench = MakeBenchWorld(flags, 200, 40);

  RetweetTaskOptions opts;
  opts.min_news = 40;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  std::printf("Recurrent-cell ablation for RETINA-D (Section V-B)\n");
  TableWriter table("", {"cell", "macro-F1 (cum.)", "ACC (cum.)", "AUC",
                         "user AUC", "train s"});
  double gru_auc = 0.0, rnn_auc = 0.0, lstm_auc = 0.0;
  for (const auto kind :
       {nn::RecurrentKind::kGru, nn::RecurrentKind::kLstm,
        nn::RecurrentKind::kSimpleRnn}) {
    Stopwatch timer;
    RetinaOptions ropts;
    ropts.hidden = 48;
    ropts.dynamic = true;
    ropts.use_adam = false;
    ropts.learning_rate = 1e-3;
    ropts.lambda = 2.5;
    ropts.epochs = 4;
    ropts.recurrent = kind;
    Retina model(task.user_dim, task.content_dim, task.embed_dim,
                 task.NumIntervals(), ropts);
    if (!model.Train(task).ok()) continue;
    const double train_s = timer.ElapsedSeconds();
    const double threshold =
        model.CalibrateCumulativeThreshold(task, task.train);
    const BinaryEval interval =
        model.EvaluateCumulative(task, task.test, threshold);
    const BinaryEval user = EvaluateBinary(
        task.test, model.ScoreCandidates(task, task.test));
    table.AddRow({nn::RecurrentKindName(kind), Fmt(interval.macro_f1, 3),
                  Fmt(interval.accuracy, 3), Fmt(interval.auc, 3),
                  Fmt(user.auc, 3), Fmt(train_s, 1)});
    if (kind == nn::RecurrentKind::kGru) gru_auc = user.auc;
    if (kind == nn::RecurrentKind::kLstm) lstm_auc = user.auc;
    if (kind == nn::RecurrentKind::kSimpleRnn) rnn_auc = user.auc;
  }
  table.Print();
  std::printf(
      "\nShape checks (paper): GRU >= LSTM (no gain: %s), GRU > simple RNN "
      "(degradation: %s)\n",
      gru_auc + 0.02 >= lstm_auc ? "yes" : "NO",
      gru_auc >= rnn_auc ? "yes" : "NO");
  return 0;
}
