// Class-weight ablation. Section VI-D tunes the balancing constant lambda
// of w = lambda(log C - log C+) over {1.0, 1.5, 2.0, 2.5}, settling on 2.0
// (static) and 2.5 (dynamic). This bench reruns both modes over the grid.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;
  using namespace retina::core;

  const BenchFlags flags = ParseFlags(argc, argv, 0.06, 2000);
  BenchWorld bench = MakeBenchWorld(flags, 200, 40);

  RetweetTaskOptions opts;
  opts.min_news = 40;
  auto task_result = BuildRetweetTask(*bench.extractor, opts);
  if (!task_result.ok()) return 1;
  const RetweetTask& task = task_result.ValueOrDie();

  std::printf(
      "Lambda ablation: positive-class weight w = lambda(log C - log C+)\n");
  TableWriter table("", {"mode", "lambda", "macro-F1", "ACC", "AUC"});
  for (const bool dynamic : {false, true}) {
    for (const double lambda : {1.0, 1.5, 2.0, 2.5}) {
      RetinaOptions ropts;
      ropts.hidden = 48;
      ropts.epochs = 3;
      ropts.dynamic = dynamic;
      ropts.lambda = lambda;
      if (dynamic) {
        ropts.use_adam = false;
        ropts.learning_rate = 1e-3;
      }
      Retina model(task.user_dim, task.content_dim, task.embed_dim,
                   task.NumIntervals(), ropts);
      if (!model.Train(task).ok()) continue;
      BinaryEval eval;
      if (dynamic) {
        const double threshold =
            model.CalibrateCumulativeThreshold(task, task.train);
        eval = model.EvaluateCumulative(task, task.test, threshold);
      } else {
        eval = EvaluateBinary(task.test,
                              model.ScoreCandidates(task, task.test));
      }
      table.AddRow({dynamic ? "dynamic" : "static", Fmt(lambda, 1),
                    Fmt(eval.macro_f1, 3), Fmt(eval.accuracy, 3),
                    Fmt(eval.auc, 3)});
      std::fprintf(stderr, "[bench] %s lambda=%.1f done\n",
                   dynamic ? "dynamic" : "static", lambda);
    }
  }
  table.Print();
  std::printf(
      "\nReading (paper): best static configuration at lambda=2.0, best "
      "dynamic at lambda=2.5.\n");
  return 0;
}
