// Generator ablation: DESIGN.md claims each paper-shape is *caused* by a
// specific mechanism in the synthetic world. This bench switches the
// mechanisms off one at a time and reports which Figure 1 shapes survive:
//
//   baseline         all mechanisms on
//   no-echo          echo_boost=1, no chamber densification, no organized
//                    spreaders, no hater isolation
//   no-exogenous     exo_coupling=0 (news decoupled from behaviour)
//   no-hate-kinetics hateful delays = non-hate delays, virality 1
//
// Expected: no-echo breaks the "more retweets / fewer susceptible"
// signature; no-hate-kinetics breaks the early-growth gap; no-exogenous
// leaves Figure 1 intact (it matters for the prediction tasks instead).

#include "bench/bench_common.h"

namespace {

using namespace retina;
using namespace retina::bench;

struct ShapeReport {
  double rt_ratio = 0.0;    // hateful / non-hate final retweets
  double susc_ratio = 0.0;  // hateful / non-hate final susceptible
  double early_gap = 0.0;   // hate early-growth share minus non-hate
};

ShapeReport Measure(const datagen::WorldConfig& config, uint64_t seed) {
  const auto world = datagen::SyntheticWorld::Generate(config, seed);
  const std::vector<double> grid = {60, 240, 1440, 20160};
  const auto hate = world.DiffusionCurves(true, grid);
  const auto nonhate = world.DiffusionCurves(false, grid);
  ShapeReport report;
  report.rt_ratio = hate.back().mean_retweets /
                    std::max(1e-9, nonhate.back().mean_retweets);
  report.susc_ratio = hate.back().mean_susceptible /
                      std::max(1e-9, nonhate.back().mean_susceptible);
  const double hate_early =
      hate[0].mean_retweets / std::max(1e-9, hate.back().mean_retweets);
  const double nonhate_early = nonhate[0].mean_retweets /
                               std::max(1e-9, nonhate.back().mean_retweets);
  report.early_gap = hate_early - nonhate_early;
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv, 0.15, 3000);

  datagen::WorldConfig base;
  base.scale = flags.scale;
  base.num_users = flags.users;
  base.history_length = 8;

  datagen::WorldConfig no_echo = base;
  no_echo.echo_boost = 1.0;
  no_echo.hate_suppress = 1.0;
  no_echo.organized_spreader_rate = 0.0;
  no_echo.network.echo_chamber_density = 0.0;
  no_echo.network.hater_isolation = 1.0;

  datagen::WorldConfig no_exo = base;
  no_exo.exo_coupling = 0.0;

  datagen::WorldConfig no_kinetics = base;
  no_kinetics.hate_delay_tau = no_kinetics.nonhate_delay_tau;
  no_kinetics.hate_virality = 1.0;

  struct Row {
    const char* name;
    const datagen::WorldConfig* config;
  };
  const Row rows[] = {
      {"baseline", &base},
      {"no-echo", &no_echo},
      {"no-exogenous", &no_exo},
      {"no-hate-kinetics", &no_kinetics},
  };

  std::printf(
      "Generator ablation — which mechanism produces which Figure 1 "
      "shape\n");
  TableWriter table(
      "", {"variant", "RT hate/non-hate", "susceptible hate/non-hate",
           "early-growth gap", "shapes hold"});
  for (const Row& row : rows) {
    const ShapeReport r = Measure(*row.config, flags.seed);
    const bool holds = r.rt_ratio > 1.0 && r.susc_ratio < 1.0 &&
                       r.early_gap > 0.0;
    table.AddRow({row.name, Fmt(r.rt_ratio), Fmt(r.susc_ratio),
                  Fmt(r.early_gap), holds ? "yes" : "no"});
  }
  table.Print();
  std::printf(
      "\nReading: the baseline must hold all three shapes; no-echo should "
      "break the retweet/susceptible ratios; no-hate-kinetics should "
      "erase the early-growth gap.\n");
  return 0;
}
