// Extension bench (Section IX-A): the reply channel the paper leaves
// unmodeled. Reports the thread composition around hateful vs non-hate
// roots — the "same communication thread containing hateful,
// counter-hateful, and non-hateful comments" convolution the Related Work
// section argues real interactions exhibit.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace retina;
  using namespace retina::bench;

  const BenchFlags flags = ParseFlags(argc, argv, 0.2, 4000);
  BenchWorld bench = MakeBenchWorld(flags, 100, 10, 8,
                                    /*build_features=*/false);
  const auto& world = bench.world;

  const datagen::ReplyStats hate = world.ComputeReplyStats(true);
  const datagen::ReplyStats clean = world.ComputeReplyStats(false);

  std::printf("Section IX-A extension — reply-thread composition\n");
  TableWriter table("", {"root", "replies/tweet", "hateful replies",
                         "counter-speech"});
  table.AddRow({"hateful", Fmt(hate.replies_per_tweet),
                Fmt(hate.hateful_reply_fraction),
                Fmt(hate.counter_speech_fraction)});
  table.AddRow({"non-hate", Fmt(clean.replies_per_tweet),
                Fmt(clean.hateful_reply_fraction),
                Fmt(clean.counter_speech_fraction)});
  table.Print();

  // Thread convolution: fraction of hateful-root threads that contain all
  // three comment kinds (supportive hate, counter-speech, neutral).
  size_t threads = 0, convoluted = 0;
  for (size_t i = 0; i < world.tweets().size(); ++i) {
    if (!world.tweets()[i].is_hateful || world.Replies(i).empty()) continue;
    ++threads;
    bool has_hate = false, has_counter = false, has_neutral = false;
    for (const auto& r : world.Replies(i)) {
      if (r.counter_speech) {
        has_counter = true;
      } else if (r.is_hateful) {
        has_hate = true;
      } else {
        has_neutral = true;
      }
    }
    convoluted += (has_hate && has_counter && has_neutral);
  }
  std::printf(
      "\n%.0f%% of non-empty hateful-root threads mix supportive hate, "
      "counter-speech and neutral replies (%zu threads) — the convolution "
      "that makes independent hate/non-hate cascade analyses inadequate "
      "(Related Work, Section II).\n",
      threads > 0 ? 100.0 * static_cast<double>(convoluted) /
                        static_cast<double>(threads)
                  : 0.0,
      threads);
  std::printf(
      "Shape checks: hateful roots draw more hateful replies (%s) and all "
      "counter-speech concentrates under hateful roots (%s).\n",
      hate.hateful_reply_fraction > clean.hateful_reply_fraction ? "yes"
                                                                 : "NO",
      clean.counter_speech_fraction < 1e-9 ? "yes" : "NO");
  return 0;
}
